"""B+ tree index implementation.

A genuine B+ tree with internal nodes, leaf chaining, splits and
merge/borrow on underflow. Two index flavours wrap the tree:

* :class:`PrimaryBTreeIndex` — the clustered index: full rows live in the
  leaves, ordered by the key columns.
* :class:`SecondaryBTreeIndex` — a nonclustered index: leaves hold the key
  columns, any *included* columns, and the row id (RID) used to look up
  the remaining columns in the primary structure.

Because SQL Server uniquifies nonunique clustered keys, the internal sort
key is always ``key_values + (rid,)`` which makes every entry unique and
deletion exact.

NULLs are not permitted in index key columns (the workloads in the paper's
benchmarks never index nullable keys); inserting one raises
:class:`~repro.core.errors.StorageError`.

Cost accounting: index methods charge *I/O* (random page reads for
traversals, leaf-chain bandwidth for range scans) against the supplied
:class:`~repro.engine.metrics.ExecutionContext`. Per-row *CPU* is charged
by the operators that consume the rows, so the same index can feed row-mode
and batch-mode plans with different CPU costs.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import StorageError
from repro.core.schema import TableSchema
from repro.engine.metrics import ExecutionContext
from repro.storage.faults import FaultInjector, trip
from repro.storage.telemetry import IndexUsageStats

Key = Tuple[object, ...]
Row = Tuple[object, ...]


class _Leaf:
    __slots__ = ("keys", "values", "next", "prev", "page_no")

    def __init__(self) -> None:
        self.keys: List[Key] = []
        self.values: List[Row] = []
        self.next: Optional["_Leaf"] = None
        self.prev: Optional["_Leaf"] = None
        self.page_no: int = -1


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] holds keys < keys[i]; children[-1] holds the rest.
        self.keys: List[Key] = []
        self.children: List[object] = []


class BPlusTree:
    """Ordered map from unique key tuples to payload rows.

    ``leaf_capacity`` and ``internal_capacity`` are the maximum number of
    entries per node; nodes split at capacity and borrow/merge when they
    fall below half.
    """

    def __init__(self, leaf_capacity: int = 128, internal_capacity: int = 64):
        if leaf_capacity < 4 or internal_capacity < 4:
            raise StorageError("node capacity must be at least 4")
        self.leaf_capacity = leaf_capacity
        self.internal_capacity = internal_capacity
        self._root: object = _Leaf()
        self._height = 1
        self._count = 0
        self._next_page_no = 0
        self._first_leaf: _Leaf = self._root  # type: ignore[assignment]
        self._first_leaf.page_no = self._alloc_page()

    def _alloc_page(self) -> int:
        page = self._next_page_no
        self._next_page_no += 1
        return page

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Number of node levels from root to leaf."""
        return self._height

    @property
    def leaf_count(self) -> int:
        """Number of leaf nodes in the chain."""
        count = 0
        leaf = self._first_leaf
        while leaf is not None:
            count += 1
            leaf = leaf.next
        return count

    # ------------------------------------------------------------ search
    def _find_leaf(self, key: Key) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect_right(node.keys, key)
            node = node.children[idx]
        return node  # type: ignore[return-value]

    def get(self, key: Key) -> Optional[Row]:
        """Look up the payload stored under ``key`` (None if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def scan_range(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[Key, Row]]:
        """Yield (key, value) pairs with low <= key <= high in key order.

        Open bounds are expressed with ``None``. Exclusive bounds via the
        ``*_inclusive`` flags. Prefix bounds work naturally because Python
        tuple comparison is lexicographic.
        """
        if low is None:
            leaf: Optional[_Leaf] = self._first_leaf
            idx = 0
        else:
            leaf = self._find_leaf(low)
            if low_inclusive:
                idx = bisect_left(leaf.keys, low)
            else:
                idx = bisect_right(leaf.keys, low)
        while leaf is not None:
            keys = leaf.keys
            values = leaf.values
            n = len(keys)
            while idx < n:
                key = keys[idx]
                if high is not None:
                    if high_inclusive:
                        if key > high:
                            return
                    elif key >= high:
                        return
                yield key, values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    def count_range(self, low: Optional[Key], high: Optional[Key]) -> int:
        """Number of keys within the given bounds."""
        return sum(1 for _ in self.scan_range(low, high))

    def leaves_in_range(self, low: Optional[Key], high: Optional[Key]) -> int:
        """Number of leaf pages a range scan over [low, high] touches."""
        if low is None:
            leaf: Optional[_Leaf] = self._first_leaf
        else:
            leaf = self._find_leaf(low)
        pages = 0
        while leaf is not None:
            pages += 1
            if high is not None and leaf.keys and leaf.keys[-1] > high:
                break
            leaf = leaf.next
        return pages

    # ------------------------------------------------------------ insert
    def insert(self, key: Key, value: Row) -> None:
        """Insert a unique key. Raises on duplicates."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._count += 1

    def _insert_into(self, node: object, key: Key, value: Row):
        if isinstance(node, _Leaf):
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                raise StorageError(f"duplicate index key {key!r}")
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) > self.leaf_capacity:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Internal)
        idx = bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) > self.internal_capacity:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.page_no = self._alloc_page()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # ------------------------------------------------------------ delete
    def delete(self, key: Key) -> Row:
        """Remove ``key``; returns its payload. Raises if absent."""
        removed = self._delete_from(self._root, key)
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1
        self._count -= 1
        return removed

    def _delete_from(self, node: object, key: Key) -> Row:
        if isinstance(node, _Leaf):
            idx = bisect_left(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                raise StorageError(f"index key not found: {key!r}")
            node.keys.pop(idx)
            return node.values.pop(idx)
        assert isinstance(node, _Internal)
        idx = bisect_right(node.keys, key)
        removed = self._delete_from(node.children[idx], key)
        self._rebalance_child(node, idx)
        return removed

    def _min_entries(self, node: object) -> int:
        if isinstance(node, _Leaf):
            return self.leaf_capacity // 2
        return self.internal_capacity // 2

    def _entries(self, node: object) -> int:
        if isinstance(node, _Leaf):
            return len(node.keys)
        return len(node.children)  # type: ignore[union-attr]

    def _rebalance_child(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        if self._entries(child) >= self._min_entries(child):
            return
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        if left is not None and self._entries(left) > self._min_entries(left):
            self._borrow_from_left(parent, idx)
        elif right is not None and self._entries(right) > self._min_entries(right):
            self._borrow_from_right(parent, idx)
        elif left is not None:
            self._merge_children(parent, idx - 1)
        elif right is not None:
            self._merge_children(parent, idx)

    def _borrow_from_left(self, parent: _Internal, idx: int) -> None:
        left, child = parent.children[idx - 1], parent.children[idx]
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            assert isinstance(left, _Internal) and isinstance(child, _Internal)
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Internal, idx: int) -> None:
        child, right = parent.children[idx], parent.children[idx + 1]
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            assert isinstance(right, _Internal) and isinstance(child, _Internal)
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge_children(self, parent: _Internal, idx: int) -> None:
        left, right = parent.children[idx], parent.children[idx + 1]
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
            if right.next is not None:
                right.next.prev = left
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(idx)
        parent.children.pop(idx + 1)

    # ---------------------------------------------------------- bulk load
    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[Key, Row]],
        leaf_capacity: int = 128,
        internal_capacity: int = 64,
    ) -> "BPlusTree":
        """Build a tree bottom-up from *sorted* unique (key, value) pairs.

        Leaves are filled to ~85% like a real bulk load, leaving headroom
        for subsequent inserts.
        """
        tree = cls(leaf_capacity=leaf_capacity, internal_capacity=internal_capacity)
        if not items:
            return tree
        for i in range(1, len(items)):
            if items[i][0] <= items[i - 1][0]:
                raise StorageError("bulk_load requires sorted unique keys")
        fill = max(4, int(leaf_capacity * 0.85))
        leaves: List[_Leaf] = []
        for start in range(0, len(items), fill):
            chunk = items[start:start + fill]
            leaf = _Leaf()
            leaf.page_no = tree._alloc_page() if leaves else tree._first_leaf.page_no
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
                leaf.prev = leaves[-1]
            leaves.append(leaf)
        tree._first_leaf = leaves[0]
        tree._count = len(items)
        # Build internal levels bottom-up.
        level: List[object] = list(leaves)
        separators = [leaf.keys[0] for leaf in leaves]
        height = 1
        fanout = max(4, int(internal_capacity * 0.85))
        while len(level) > 1:
            next_level: List[object] = []
            next_seps: List[Key] = []
            for start in range(0, len(level), fanout):
                group = level[start:start + fanout]
                node = _Internal()
                node.children = list(group)
                node.keys = separators[start + 1:start + len(group)]
                next_level.append(node)
                next_seps.append(separators[start])
            level = next_level
            separators = next_seps
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    def items(self) -> Iterator[Tuple[Key, Row]]:
        """Iterate all (key, value) pairs in key order."""
        return self.scan_range(None, None)

    def check_invariants(self) -> None:
        """Verify ordering and leaf-chain consistency (used by tests)."""
        previous = None
        count = 0
        leaf = self._first_leaf
        while leaf is not None:
            for key in leaf.keys:
                if previous is not None and key <= previous:
                    raise StorageError(f"key order violated at {key!r}")
                previous = key
                count += 1
            if leaf.next is not None and leaf.next.prev is not leaf:
                raise StorageError("leaf chain back-pointer broken")
            leaf = leaf.next
        if count != self._count:
            raise StorageError(f"count mismatch: chain {count} vs counter {self._count}")


def _check_key_not_null(key_values: Sequence[object]) -> None:
    if any(v is None for v in key_values):
        raise StorageError("NULL is not allowed in index key columns")


class _BTreeIndexBase:
    """State and sizing shared by primary and secondary B+ tree indexes."""

    kind = "btree"

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        key_columns: Sequence[str],
        entry_byte_width: int,
        object_id: int = 0,
    ):
        if not key_columns:
            raise StorageError(f"index {name!r} needs at least one key column")
        self.name = name
        self.schema = schema
        self.key_columns = list(key_columns)
        self.key_ordinals = schema.ordinals(key_columns)
        self.entry_byte_width = entry_byte_width
        self.object_id = object_id
        #: Fault injector attached by the owning Table (None standalone).
        self.faults: Optional[FaultInjector] = None
        #: Cumulative usage counters (dm_db_index_usage_stats); recorded
        #: only for context-carrying (user) accesses, never charged.
        self.usage = IndexUsageStats()
        leaf_capacity = max(8, min(512, 8192 // max(1, entry_byte_width)))
        self.tree = BPlusTree(leaf_capacity=leaf_capacity)

    def __len__(self) -> int:
        return len(self.tree)

    def size_bytes(self) -> int:
        """Approximate on-disk size: entries plus ~2% internal overhead.

        Uses ``len(self)`` (not ``len(self.tree)``) so sizing a paged
        index reads the resident item count instead of materializing."""
        data = len(self) * self.entry_byte_width
        return int(data * 1.02) + 8192

    def _make_key(self, row: Row, rid: int) -> Key:
        key_values = tuple(row[i] for i in self.key_ordinals)
        _check_key_not_null(key_values)
        return key_values + (rid,)

    def _charge_traversal(self, ctx: Optional[ExecutionContext]) -> None:
        if ctx is None:
            return
        ctx.charge_random_read(self.tree.height)
        ctx.charge_serial_cpu(ctx.cost_model.seek_cpu_ms)

    def _charge_range_io(
        self, ctx: Optional[ExecutionContext], rows_touched: int
    ) -> None:
        if ctx is None:
            return
        nbytes = rows_touched * self.entry_byte_width
        ctx.charge_btree_scan_read(nbytes)
        ctx.record_data_read(nbytes)

    def _record_range_access(
        self,
        ctx: Optional[ExecutionContext],
        low: Optional[Key],
        high: Optional[Key],
    ) -> None:
        """Classify a user range access: open bounds on both ends are a
        scan, anything bounded is a seek. Context-free (internal) reads
        are not user accesses and record nothing."""
        if ctx is None:
            return
        if low is None and high is None:
            self.usage.record_scan()
        else:
            self.usage.record_seek()


class PrimaryBTreeIndex(_BTreeIndexBase):
    """Clustered B+ tree: the table's rows live in the leaves."""

    is_primary = True

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        key_columns: Sequence[str],
        object_id: int = 0,
    ):
        super().__init__(
            name, schema, key_columns,
            entry_byte_width=schema.row_byte_width, object_id=object_id,
        )

    @classmethod
    def build(
        cls,
        name: str,
        schema: TableSchema,
        key_columns: Sequence[str],
        rows_with_rids: Sequence[Tuple[int, Row]],
        object_id: int = 0,
    ) -> "PrimaryBTreeIndex":
        """Construct and populate the demo database."""
        index = cls(name, schema, key_columns, object_id=object_id)
        ordinals = index.key_ordinals
        items = []
        for rid, row in rows_with_rids:
            key_values = tuple(row[i] for i in ordinals)
            _check_key_not_null(key_values)
            items.append((key_values + (rid,), row))
        items.sort(key=lambda kv: kv[0])
        index.tree = BPlusTree.bulk_load(
            items, leaf_capacity=index.tree.leaf_capacity
        )
        return index

    def insert(self, rid: int, row: Row, ctx: Optional[ExecutionContext] = None) -> None:
        """Insert one row, charging maintenance costs to ``ctx``."""
        trip(self.faults, "btree.insert")
        self._charge_traversal(ctx)
        self.tree.insert(self._make_key(row, rid), row)
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.btree_update_cpu_ms_per_row)

    def delete(self, rid: int, row: Row, ctx: Optional[ExecutionContext] = None) -> None:
        """Delete one row, charging maintenance costs to ``ctx``."""
        trip(self.faults, "btree.delete")
        self._charge_traversal(ctx)
        self.tree.delete(self._make_key(row, rid))
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.btree_update_cpu_ms_per_row)

    def update(
        self,
        rid: int,
        old_row: Row,
        new_row: Row,
        ctx: Optional[ExecutionContext] = None,
    ) -> None:
        """Update one row in place (delete+insert when keys change)."""
        old_key = self._make_key(old_row, rid)
        new_key = self._make_key(new_row, rid)
        trip(self.faults, "btree.update")
        self._charge_traversal(ctx)
        if old_key == new_key:
            leaf = self.tree._find_leaf(old_key)
            idx = bisect_left(leaf.keys, old_key)
            if idx >= len(leaf.keys) or leaf.keys[idx] != old_key:
                raise StorageError(f"row {rid} not found for in-place update")
            leaf.values[idx] = new_row
        else:
            self.tree.delete(old_key)
            try:
                trip(self.faults, "btree.insert")
                self.tree.insert(new_key, new_row)
            except BaseException:
                # Keep the index atomic: put the old entry back before
                # surfacing the failure.
                self.tree.insert(old_key, old_row)
                raise
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.btree_update_cpu_ms_per_row)

    def seek_range(
        self,
        low: Optional[Key],
        high: Optional[Key],
        ctx: Optional[ExecutionContext] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[int, Row]]:
        """Range scan on a key prefix; yields (rid, row) in key order.

        ``low``/``high`` are key-column-value tuples (no rid); bounds are
        padded so that inclusive/exclusive semantics apply per key prefix.
        """
        self._charge_traversal(ctx)
        self._record_range_access(ctx, low, high)
        low_key, high_key = _pad_prefix_bounds(low, high, low_inclusive, high_inclusive)
        rows = 0
        for key, row in self.tree.scan_range(
            low_key, high_key, low_inclusive, high_inclusive
        ):
            rows += 1
            yield key[-1], row
        self._charge_range_io(ctx, rows)

    def scan(self, ctx: Optional[ExecutionContext] = None) -> Iterator[Tuple[int, Row]]:
        """Full ordered scan of the leaf chain."""
        if ctx is not None:
            self.usage.record_scan()
        rows = 0
        for key, row in self.tree.items():
            rows += 1
            yield key[-1], row
        self._charge_range_io(ctx, rows)

    def lookup_rid(self, rid_to_row: Row, rid: int) -> Optional[Row]:
        """Find the stored row for (row values, rid); None if absent."""
        return self.tree.get(self._make_key(rid_to_row, rid))


class SecondaryBTreeIndex(_BTreeIndexBase):
    """Nonclustered B+ tree: leaves store key + included columns + RID."""

    is_primary = False

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        key_columns: Sequence[str],
        included_columns: Sequence[str] = (),
        object_id: int = 0,
    ):
        overlap = set(key_columns) & set(included_columns)
        if overlap:
            raise StorageError(
                f"columns {sorted(overlap)} are both key and included in {name!r}"
            )
        width = (
            sum(schema.column(c).col_type.byte_width for c in key_columns)
            + sum(schema.column(c).col_type.byte_width for c in included_columns)
            + 8  # RID
        )
        super().__init__(name, schema, key_columns, entry_byte_width=width,
                         object_id=object_id)
        self.included_columns = list(included_columns)
        self.included_ordinals = schema.ordinals(included_columns)
        #: Columns available without a primary lookup, in payload order.
        self.covered_columns = list(key_columns) + list(included_columns)

    @classmethod
    def build(
        cls,
        name: str,
        schema: TableSchema,
        key_columns: Sequence[str],
        rows_with_rids: Sequence[Tuple[int, Row]],
        included_columns: Sequence[str] = (),
        object_id: int = 0,
    ) -> "SecondaryBTreeIndex":
        """Construct and populate the demo database."""
        index = cls(name, schema, key_columns, included_columns, object_id=object_id)
        items = []
        for rid, row in rows_with_rids:
            key_values = tuple(row[i] for i in index.key_ordinals)
            _check_key_not_null(key_values)
            payload = tuple(row[i] for i in index.included_ordinals)
            items.append((key_values + (rid,), payload))
        items.sort(key=lambda kv: kv[0])
        index.tree = BPlusTree.bulk_load(items, leaf_capacity=index.tree.leaf_capacity)
        return index

    def _payload(self, row: Row) -> Row:
        return tuple(row[i] for i in self.included_ordinals)

    def insert(self, rid: int, row: Row, ctx: Optional[ExecutionContext] = None) -> None:
        """Insert one row, charging maintenance costs to ``ctx``."""
        trip(self.faults, "btree.insert")
        self._charge_traversal(ctx)
        self.tree.insert(self._make_key(row, rid), self._payload(row))
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.btree_update_cpu_ms_per_row)

    def delete(self, rid: int, row: Row, ctx: Optional[ExecutionContext] = None) -> None:
        """Delete one row, charging maintenance costs to ``ctx``."""
        trip(self.faults, "btree.delete")
        self._charge_traversal(ctx)
        self.tree.delete(self._make_key(row, rid))
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.btree_update_cpu_ms_per_row)

    def update(
        self,
        rid: int,
        old_row: Row,
        new_row: Row,
        ctx: Optional[ExecutionContext] = None,
    ) -> None:
        """Update one row in place (delete+insert when keys change)."""
        old_key = self._make_key(old_row, rid)
        new_key = self._make_key(new_row, rid)
        relevant = self.key_ordinals + self.included_ordinals
        if old_key == new_key and all(old_row[i] == new_row[i] for i in relevant):
            return  # the index does not cover any modified column
        trip(self.faults, "btree.update")
        self._charge_traversal(ctx)
        self.tree.delete(old_key)
        try:
            trip(self.faults, "btree.insert")
            self.tree.insert(new_key, self._payload(new_row))
        except BaseException:
            # Keep the index atomic: put the old entry back before
            # surfacing the failure.
            self.tree.insert(old_key, self._payload(old_row))
            raise
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.btree_update_cpu_ms_per_row)

    def seek_range(
        self,
        low: Optional[Key],
        high: Optional[Key],
        ctx: Optional[ExecutionContext] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[int, Row]]:
        """Yields (rid, covered_values) where covered_values follows
        ``self.covered_columns`` order."""
        self._charge_traversal(ctx)
        self._record_range_access(ctx, low, high)
        low_key, high_key = _pad_prefix_bounds(low, high, low_inclusive, high_inclusive)
        rows = 0
        for key, payload in self.tree.scan_range(
            low_key, high_key, low_inclusive, high_inclusive
        ):
            rows += 1
            yield key[-1], key[:-1] + payload
        self._charge_range_io(ctx, rows)

    def scan(self, ctx: Optional[ExecutionContext] = None) -> Iterator[Tuple[int, Row]]:
        """Iterate the structure's rows/batches in storage order."""
        yield from self.seek_range(None, None, ctx)


class PagedLeafSource:
    """Demand-paged leaf storage of one B+ index.

    The lazy snapshot loader hands each paged index one of these: the
    resident half is tiny (item count, one fence key per leaf page, page
    locations), the leaf pages themselves are fetched through the buffer
    pool on first touch and evicted LRU under its budget. ``fences[i]``
    is the first key of leaf page ``i`` — a one-level "internal node"
    kept in memory, exactly the tentpole's contract (catalog and B+
    internal structure resident, leaves paged).

    ``read_page(offset, length)`` decodes one PT_BTREE_LEAF page into
    its (key, value) item list; it is supplied by
    :mod:`repro.storage.pages` so this module stays codec-free.
    """

    __slots__ = ("pool", "object_id", "n_items", "fences", "page_locs",
                 "read_page")

    def __init__(self, pool, object_id: int, n_items: int,
                 fences: Sequence[Key],
                 page_locs: Sequence[Tuple[int, int, int]],
                 read_page) -> None:
        self.pool = pool
        self.object_id = object_id
        self.n_items = n_items
        self.fences = [tuple(f) for f in fences]
        #: (snapshot page id, byte offset, byte length) per leaf page.
        self.page_locs = list(page_locs)
        self.read_page = read_page

    @property
    def n_pages(self) -> int:
        return len(self.page_locs)

    def fetch(self, page_no: int, pin: bool = False) -> List[Tuple[Key, Row]]:
        """Items of one leaf page, faulting it in through the pool."""
        page_id, offset, length = self.page_locs[page_no]
        return self.pool.get_or_load(
            (self.object_id, page_id),
            lambda: (self.read_page(offset, length), length),
            pin=pin,
        )

    def unpin(self, page_no: int) -> None:
        self.pool.unpin((self.object_id, self.page_locs[page_no][0]))

    def evict(self) -> None:
        """Drop every resident leaf page of this index from the pool."""
        self.pool.evict_object(self.object_id)


class _PagedBTreeMixin:
    """Demand-paged read paths for a B+ index restored lazily.

    While paged, seeks and scans route through the leaf-fence array and
    fetch only the touched leaf pages (pinned for the duration of the
    read). Any access that needs the full in-memory tree — a mutation,
    ``check_invariants``, a checkpoint's ``tree.items()`` — goes through
    the ``tree`` property, which transparently **materializes**: all
    leaf pages are read once, bulk-loaded into a real
    :class:`BPlusTree`, and the paged pages evicted from the pool. After
    materialization the index is indistinguishable from an eagerly
    restored one, so correctness never depends on staying paged.

    Modeled-cost parity: ``_charge_traversal`` of a paged index charges
    the height the materialized tree *would* have (the deterministic
    ``bulk_load`` shape recomputed from the item count), so modeled
    metrics are identical whether or not the index ever materializes.
    """

    _paged: Optional[PagedLeafSource] = None

    def attach_paged(self, source: PagedLeafSource) -> None:
        self._paged = source

    @property
    def tree(self) -> BPlusTree:
        if self._paged is not None:
            self._materialize()
        return self._tree

    @tree.setter
    def tree(self, value: BPlusTree) -> None:
        self._tree = value
        self._paged = None

    @property
    def is_paged(self) -> bool:
        """Whether leaf pages still live behind the buffer pool."""
        return self._paged is not None

    def release_paged(self) -> None:
        """Drop this index's pool pages (rebuild/drop invalidation)."""
        if self._paged is not None:
            self._paged.evict()

    def _materialize(self) -> None:
        source = self._paged
        items: List[Tuple[Key, Row]] = []
        for page_no in range(source.n_pages):
            items.extend(source.fetch(page_no))
        tree = BPlusTree.bulk_load(
            items, leaf_capacity=self._tree.leaf_capacity,
            internal_capacity=self._tree.internal_capacity)
        self._tree = tree
        self._paged = None
        source.evict()

    def __len__(self) -> int:
        if self._paged is not None:
            return self._paged.n_items
        return len(self._tree)

    def _paged_height(self) -> int:
        """Height of the tree :meth:`_materialize` would build — the
        deterministic :meth:`BPlusTree.bulk_load` shape recomputed from
        the item count, so paged and materialized traversals charge
        identical modeled I/O."""
        n = self._paged.n_items
        if n == 0:
            return 1
        fill = max(4, int(self._tree.leaf_capacity * 0.85))
        fanout = max(4, int(self._tree.internal_capacity * 0.85))
        level = -(-n // fill)
        height = 1
        while level > 1:
            level = -(-level // fanout)
            height += 1
        return height

    def _charge_traversal(self, ctx: Optional[ExecutionContext]) -> None:
        if ctx is None:
            return
        if self._paged is not None:
            ctx.charge_random_read(self._paged_height())
            ctx.charge_serial_cpu(ctx.cost_model.seek_cpu_ms)
        else:
            super()._charge_traversal(ctx)

    def _paged_scan(
        self,
        low: Optional[Key],
        high: Optional[Key],
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> Iterator[Tuple[Key, Row]]:
        """Replicates :meth:`BPlusTree.scan_range` bound semantics over
        paged leaves. Each page stays pinned while its items are being
        yielded so LRU pressure from other sessions cannot evict the
        page mid-read."""
        source = self._paged
        n_pages = source.n_pages
        idx: Optional[int]
        if low is None:
            page_no, idx = 0, 0
        else:
            page_no = max(0, bisect_right(source.fences, low) - 1)
            idx = None  # bisect within the first page once fetched
        while page_no < n_pages:
            items = source.fetch(page_no, pin=True)
            try:
                if idx is None:
                    keys = [k for k, _ in items]
                    idx = (bisect_left(keys, low) if low_inclusive
                           else bisect_right(keys, low))
                for key, value in items[idx:]:
                    if high is not None:
                        if high_inclusive:
                            if key > high:
                                return
                        elif key >= high:
                            return
                    yield key, value
            finally:
                source.unpin(page_no)
            page_no += 1
            idx = 0

    def _paged_get(self, key: Key) -> Optional[Row]:
        source = self._paged
        if source.n_pages == 0:
            return None
        page_no = max(0, bisect_right(source.fences, key) - 1)
        items = source.fetch(page_no, pin=True)
        try:
            keys = [k for k, _ in items]
            idx = bisect_left(keys, key)
            if idx < len(keys) and keys[idx] == key:
                return items[idx][1]
            return None
        finally:
            source.unpin(page_no)


class PagedPrimaryBTreeIndex(_PagedBTreeMixin, PrimaryBTreeIndex):
    """Clustered B+ index with demand-paged leaves.

    Read paths (seek/scan/point lookup) page leaf pages in through the
    buffer pool; mutations inherit the base implementations, which touch
    ``self.tree`` and therefore materialize first (redo during recovery
    forces residency the same way).
    """

    def seek_range(
        self,
        low: Optional[Key],
        high: Optional[Key],
        ctx: Optional[ExecutionContext] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[int, Row]]:
        if self._paged is None:
            yield from super().seek_range(low, high, ctx,
                                          low_inclusive, high_inclusive)
            return
        self._charge_traversal(ctx)
        self._record_range_access(ctx, low, high)
        low_key, high_key = _pad_prefix_bounds(
            low, high, low_inclusive, high_inclusive)
        rows = 0
        for key, row in self._paged_scan(low_key, high_key,
                                         low_inclusive, high_inclusive):
            rows += 1
            yield key[-1], row
        self._charge_range_io(ctx, rows)

    def scan(self, ctx: Optional[ExecutionContext] = None
             ) -> Iterator[Tuple[int, Row]]:
        if self._paged is None:
            yield from super().scan(ctx)
            return
        if ctx is not None:
            self.usage.record_scan()
        rows = 0
        for key, row in self._paged_scan(None, None, True, True):
            rows += 1
            yield key[-1], row
        self._charge_range_io(ctx, rows)

    def lookup_rid(self, rid_to_row: Row, rid: int) -> Optional[Row]:
        if self._paged is None:
            return super().lookup_rid(rid_to_row, rid)
        return self._paged_get(self._make_key(rid_to_row, rid))


class PagedSecondaryBTreeIndex(_PagedBTreeMixin, SecondaryBTreeIndex):
    """Nonclustered B+ index with demand-paged leaves (see
    :class:`PagedPrimaryBTreeIndex`; ``scan`` delegates to
    ``seek_range`` in the base class and needs no override)."""

    def seek_range(
        self,
        low: Optional[Key],
        high: Optional[Key],
        ctx: Optional[ExecutionContext] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[int, Row]]:
        if self._paged is None:
            yield from super().seek_range(low, high, ctx,
                                          low_inclusive, high_inclusive)
            return
        self._charge_traversal(ctx)
        self._record_range_access(ctx, low, high)
        low_key, high_key = _pad_prefix_bounds(
            low, high, low_inclusive, high_inclusive)
        rows = 0
        for key, payload in self._paged_scan(low_key, high_key,
                                             low_inclusive, high_inclusive):
            rows += 1
            yield key[-1], key[:-1] + tuple(payload)
        self._charge_range_io(ctx, rows)


class _Infinity:
    """Sorts above every value of any type (used to pad prefix bounds)."""

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return True

    def __le__(self, other: object) -> bool:
        return other is self

    def __ge__(self, other: object) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return other is self

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return "+inf"


_INFINITY = _Infinity()


def _pad_prefix_bounds(
    low: Optional[Key],
    high: Optional[Key],
    low_inclusive: bool,
    high_inclusive: bool,
) -> Tuple[Optional[Key], Optional[Key]]:
    """Convert prefix bounds on key columns into full-key bounds.

    Stored keys end in a RID, so a prefix bound ``(5,)`` compares *below*
    every stored key ``(5, rid)``. To make bounds behave per-prefix:

    * an *exclusive* low bound must skip all keys with that prefix, so it
      is padded with ``+inf``;
    * an *inclusive* high bound must keep all keys with that prefix, so it
      is padded with ``+inf``;
    * the remaining two cases need no padding — tuple comparison against
      the shorter prefix already does the right thing.
    """
    low_key: Optional[Key] = None
    high_key: Optional[Key] = None
    if low is not None:
        low_key = tuple(low) if low_inclusive else tuple(low) + (_INFINITY,)
    if high is not None:
        high_key = tuple(high) + (_INFINITY,) if high_inclusive else tuple(high)
    return low_key, high_key


def math_ceil_pages(nbytes: int, page_bytes: int) -> int:
    """Number of pages needed for ``nbytes``."""
    return int(math.ceil(nbytes / page_bytes))
