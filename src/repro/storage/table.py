"""Table object: canonical row storage plus coordinated index maintenance.

A :class:`Table` owns

* a logical row store (``rid -> row``) that is the correctness source of
  truth,
* a *primary structure* — heap file, clustered B+ tree, or primary
  columnstore — which determines base-table access paths and sizes,
* any number of secondary indexes (B+ trees, and at most one secondary
  columnstore per table, matching SQL Server's restriction noted in
  Section 4.3).

Every DML call updates the primary structure and all secondary indexes,
charging maintenance costs to the supplied execution context — this is
where "B+ trees are the cheapest to update" and the delta-store /
delete-buffer behaviours of Figure 5 come from.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from repro.core.errors import CatalogError, StorageError
from repro.core.schema import TableSchema
from repro.engine.metrics import ExecutionContext
from repro.storage.btree import PrimaryBTreeIndex, SecondaryBTreeIndex
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.faults import FaultInjector, InjectedFault, trip
from repro.storage.heap import HeapFile
from repro.storage.telemetry import LogicalClock

Row = Tuple[object, ...]
PrimaryStructure = Union[HeapFile, PrimaryBTreeIndex, ColumnstoreIndex]
SecondaryIndex = Union[SecondaryBTreeIndex, ColumnstoreIndex]


class Table:
    """A named table with a schema, rows, and physical design."""

    def __init__(self, schema: TableSchema, segment_cache=None,
                 fault_injector: Optional[FaultInjector] = None,
                 usage_clock: Optional[LogicalClock] = None):
        self.schema = schema
        self.name = schema.name
        self._rows: Dict[int, Row] = {}
        self._next_rid = 0
        #: Shared fault injector handed down by the owning Database;
        #: attached to every index structure built on this table. None
        #: (standalone tables) disables injection entirely.
        self.fault_injector = fault_injector
        #: Shared logical clock handed down by the owning Database's
        #: Telemetry (standalone tables get a private one); attached to
        #: every index's usage counters for last_user_* stamps.
        self.usage_clock = usage_clock or LogicalClock()
        self.primary: PrimaryStructure = HeapFile(f"{self.name}_heap", schema)
        self.primary.faults = fault_injector
        self.primary.usage.clock = self.usage_clock
        self.secondary_indexes: Dict[str, SecondaryIndex] = {}
        #: Shared decoded-segment cache handed down by the owning
        #: Database; attached to every columnstore built on this table.
        #: None (standalone tables) leaves columnstores uncached.
        self.segment_cache = segment_cache
        #: Rows touched by DML since creation — drives statistics
        #: staleness detection (SQL Server's auto-update-stats rule).
        self.modification_counter = 0
        #: Write-ahead log attached by a durable owning Database (None
        #: keeps the table pure-simulator). Every successful DML/DDL
        #: call logs its redo ops here *after* applying in memory; the
        #: executor's statement scope makes multi-call statements one
        #: atomic log transaction.
        self.wal = None

    # --------------------------------------------------------- durability
    def attach_wal(self, wal) -> None:
        """Start logging this table's DML/DDL to ``wal``."""
        self.wal = wal
        for index in self.all_indexes:
            self._attach_wal_hooks(index)

    def _attach_wal_hooks(self, index) -> None:
        """Give columnstores their explicit-maintenance redo logger."""
        if self.wal is not None and isinstance(index, ColumnstoreIndex):
            index.wal_notify = self._maintenance_logger(index.name)

    def _maintenance_logger(self, index_name: str) -> Callable[[str], None]:
        def notify(kind: str) -> None:
            self._log_ops([{
                "op": "maintenance", "table": self.name,
                "index": index_name, "kind": kind,
            }])
        return notify

    def _log_ops(self, ops) -> None:
        if self.wal is not None:
            self.wal.log_ops(ops)

    # ------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def row_count(self) -> int:
        """Number of live rows in the table."""
        return len(self._rows)

    def rows_with_rids(self) -> List[Tuple[int, Row]]:
        """All (rid, row) pairs sorted by RID."""
        return sorted(self._rows.items())

    def get_row(self, rid: int) -> Row:
        """Fetch a row tuple by RID (StorageError if absent)."""
        try:
            return self._rows[rid]
        except KeyError:
            raise StorageError(f"rid {rid} not in table {self.name!r}") from None

    def has_rid(self, rid: int) -> bool:
        """Whether the RID currently exists."""
        return rid in self._rows

    def iter_rows(self) -> Iterator[Tuple[int, Row]]:
        """Iterate (rid, row) pairs in RID order."""
        for rid in sorted(self._rows):
            yield rid, self._rows[rid]

    # ----------------------------------------------------------- indexes
    @property
    def all_indexes(self) -> List[Union[PrimaryStructure, SecondaryIndex]]:
        """The primary structure plus every secondary index."""
        return [self.primary] + list(self.secondary_indexes.values())

    def index_by_name(self, name: str) -> Union[PrimaryStructure, SecondaryIndex]:
        """Find an index (primary or secondary) by name."""
        if self.primary.name == name:
            return self.primary
        try:
            return self.secondary_indexes[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no index {name!r}"
            ) from None

    def columnstore_index(self) -> Optional[ColumnstoreIndex]:
        """The table's columnstore index, primary or secondary, if any."""
        if isinstance(self.primary, ColumnstoreIndex):
            return self.primary
        for index in self.secondary_indexes.values():
            if isinstance(index, ColumnstoreIndex):
                return index
        return None

    def secondary_btrees(self) -> List[SecondaryBTreeIndex]:
        """The table's nonclustered B+ tree indexes."""
        return [
            idx for idx in self.secondary_indexes.values()
            if isinstance(idx, SecondaryBTreeIndex)
        ]

    def _evict_cached_segments(self, structure) -> None:
        """Drop a replaced/dropped index's cached state: a columnstore's
        decoded segments (and buffer-pool frames, when demand-paged),
        and a paged B+ tree's leaf pages — a dropped structure must not
        leave stale pages resident in the shared pool."""
        if isinstance(structure, ColumnstoreIndex):
            structure.invalidate_cached_segments()
        release = getattr(structure, "release_paged", None)
        if release is not None:
            release()

    def set_primary_btree(self, key_columns: Sequence[str],
                          name: Optional[str] = None) -> PrimaryBTreeIndex:
        """Convert the primary structure to a clustered B+ tree."""
        index_name = name or f"{self.name}_pk_btree"
        index = PrimaryBTreeIndex.build(
            index_name, self.schema, key_columns, self.rows_with_rids()
        )
        index.faults = self.fault_injector
        index.usage.clock = self.usage_clock
        self._evict_cached_segments(self.primary)
        self.primary = index
        self._log_ops([{
            "op": "set_primary_btree", "table": self.name,
            "key_columns": list(key_columns), "name": index_name,
        }])
        return index

    def set_primary_columnstore(
        self,
        name: Optional[str] = None,
        rowgroup_size: Optional[int] = None,
        presorted: bool = False,
    ) -> ColumnstoreIndex:
        """Convert the primary structure to a primary columnstore."""
        if self.schema.has_unsupported_columns():
            raise CatalogError(
                f"table {self.name!r} has columnstore-unsupported columns; "
                "a primary columnstore cannot be created"
            )
        existing = self.columnstore_index()
        if existing is not None and not existing.is_primary:
            raise CatalogError(
                f"table {self.name!r} already has columnstore {existing.name!r}"
            )
        kwargs = {}
        if rowgroup_size is not None:
            kwargs["rowgroup_size"] = rowgroup_size
        index = ColumnstoreIndex.build(
            name or f"{self.name}_pk_csi", self.schema, self.rows_with_rids(),
            is_primary=True, presorted=presorted, **kwargs,
        )
        index.segment_cache = self.segment_cache
        index.faults = self.fault_injector
        index.usage.clock = self.usage_clock
        self._evict_cached_segments(self.primary)
        self.primary = index
        self._attach_wal_hooks(index)
        self._log_ops([{
            "op": "set_primary_columnstore", "table": self.name,
            "name": index.name, "rowgroup_size": rowgroup_size,
            "presorted": presorted,
            # Logged so redo rebuilds the index with the *same* id:
            # columnstore object ids key the shared segment cache and
            # participate in the snapshot digest, so replay must not
            # draw a fresh one.
            "object_id": index.object_id,
        }])
        return index

    def set_primary_heap(self) -> HeapFile:
        """Convert the primary structure back to a heap file."""
        heap = HeapFile(f"{self.name}_heap", self.schema)
        heap.faults = self.fault_injector
        heap.usage.clock = self.usage_clock
        for rid, row in self.iter_rows():
            heap.insert(rid, row)
        self._evict_cached_segments(self.primary)
        self.primary = heap
        self._log_ops([{"op": "set_primary_heap", "table": self.name}])
        return heap

    def create_secondary_btree(
        self,
        name: str,
        key_columns: Sequence[str],
        included_columns: Sequence[str] = (),
    ) -> SecondaryBTreeIndex:
        """Build a nonclustered B+ tree on the current rows."""
        self._check_index_name(name)
        index = SecondaryBTreeIndex.build(
            name, self.schema, key_columns, self.rows_with_rids(),
            included_columns=included_columns,
        )
        index.faults = self.fault_injector
        index.usage.clock = self.usage_clock
        self.secondary_indexes[name] = index
        self._log_ops([{
            "op": "create_secondary_btree", "table": self.name,
            "name": name, "key_columns": list(key_columns),
            "included_columns": list(included_columns),
        }])
        return index

    def create_secondary_columnstore(
        self,
        name: str,
        columns: Optional[Sequence[str]] = None,
        rowgroup_size: Optional[int] = None,
        sorted_on: Optional[str] = None,
        allow_multiple: bool = False,
    ) -> ColumnstoreIndex:
        """Create a secondary columnstore.

        ``sorted_on`` builds a *sorted* columnstore (a Vertica-style
        projection, Section 4.5's extension): rows are globally sorted on
        that column before compression, so segments have disjoint min/max
        ranges and range predicates on it eliminate aggressively.

        ``allow_multiple`` lifts the engine's one-columnstore-per-table
        restriction (Section 4.5: "If multiple columnstores are allowed
        on the same table...") — several projections with different sort
        orders may then coexist.
        """
        self._check_index_name(name)
        if self.columnstore_index() is not None and not allow_multiple:
            raise CatalogError(
                f"table {self.name!r} already has a columnstore index "
                "(SQL Server allows one per table)"
            )
        kwargs = {}
        if rowgroup_size is not None:
            kwargs["rowgroup_size"] = rowgroup_size
        rows = self.rows_with_rids()
        presorted = False
        if sorted_on is not None:
            ordinal = self.schema.ordinal(sorted_on)
            rows = sorted(rows, key=lambda item: (
                item[1][ordinal] is not None, item[1][ordinal]))
            presorted = True
        index = ColumnstoreIndex.build(
            name, self.schema, rows,
            columns=columns, is_primary=False, presorted=presorted,
            **kwargs,
        )
        index.segment_cache = self.segment_cache
        index.faults = self.fault_injector
        index.usage.clock = self.usage_clock
        self.secondary_indexes[name] = index
        self._attach_wal_hooks(index)
        self._log_ops([{
            "op": "create_secondary_columnstore", "table": self.name,
            "name": name,
            "columns": None if columns is None else list(columns),
            "rowgroup_size": rowgroup_size, "sorted_on": sorted_on,
            "allow_multiple": allow_multiple,
            # See set_primary_columnstore: replayed ids must match.
            "object_id": index.object_id,
        }])
        return index

    def drop_index(self, name: str) -> None:
        """Drop one secondary index by name."""
        if name not in self.secondary_indexes:
            raise CatalogError(f"table {self.name!r} has no secondary index {name!r}")
        self._evict_cached_segments(self.secondary_indexes[name])
        del self.secondary_indexes[name]
        self._log_ops([{
            "op": "drop_index", "table": self.name, "name": name,
        }])

    def drop_all_secondary_indexes(self) -> None:
        """Drop every secondary index."""
        for index in self.secondary_indexes.values():
            self._evict_cached_segments(index)
        had_indexes = bool(self.secondary_indexes)
        self.secondary_indexes.clear()
        if had_indexes:
            self._log_ops([{
                "op": "drop_all_secondary_indexes", "table": self.name,
            }])

    def _check_index_name(self, name: str) -> None:
        if name in self.secondary_indexes or name == self.primary.name:
            raise CatalogError(f"index {name!r} already exists on {self.name!r}")

    def total_index_bytes(self) -> int:
        """Combined size of every index on the table."""
        return sum(index.size_bytes() for index in self.all_indexes)

    # --------------------------------------------------------------- DML
    #
    # Every DML entry point is atomic across the primary structure and
    # all secondary indexes: if any index raises mid-statement (invalid
    # row, injected fault), the structures already touched are undone via
    # compensating operations — in reverse apply order, with fault
    # injection suspended so the rollback itself cannot fault — before
    # the original exception propagates. ``_rows``, ``_next_rid`` burn
    # aside, and ``modification_counter`` only advance on success.

    def _rollback_guard(self):
        """Suspend fault injection while compensating operations run."""
        if self.fault_injector is not None:
            return self.fault_injector.suspended()
        return nullcontext()

    def _note_rollback(self, ctx: Optional[ExecutionContext],
                       exc: BaseException) -> None:
        if ctx is not None:
            ctx.metrics.rollbacks += 1
            if isinstance(exc, InjectedFault):
                ctx.metrics.faults_injected += 1

    def _record_dml(self, ctx: Optional[ExecutionContext]) -> None:
        """Record one maintaining DML statement on every index's usage
        counters. Statement-granular like SQL Server's ``user_updates``
        (a multi-row statement counts once); only context-carrying (user)
        statements count, and only after the statement committed."""
        if ctx is None:
            return
        for structure in self.all_indexes:
            structure.usage.record_update()

    @staticmethod
    def _undo_delete(structure, rid: int, row: Row) -> None:
        """Compensate one applied delete. Columnstores need
        ``restore_row`` (a plain insert would trip the duplicate-rid
        check while a buffered compressed copy survives)."""
        if isinstance(structure, ColumnstoreIndex):
            structure.restore_row(rid, row)
        else:
            structure.insert(rid, row)

    def insert_row(self, row: Sequence[object],
                   ctx: Optional[ExecutionContext] = None) -> int:
        """Insert one validated row into the table and all indexes."""
        validated = self.schema.validate_row(row)
        rid = self._next_rid
        self._next_rid += 1
        self._rows[rid] = validated
        applied: List = []
        try:
            self.primary.insert(rid, validated, ctx)
            applied.append(self.primary)
            for index in self.secondary_indexes.values():
                trip(self.fault_injector, "table.secondary_apply")
                index.insert(rid, validated, ctx)
                applied.append(index)
        except BaseException as exc:
            with self._rollback_guard():
                for structure in reversed(applied):
                    structure.delete(rid, validated)
                del self._rows[rid]
            self._note_rollback(ctx, exc)
            raise
        self.modification_counter += 1
        self._record_dml(ctx)
        self._log_ops([{
            "op": "insert", "table": self.name, "rid": rid,
            "row": validated,
        }])
        return rid

    def bulk_load(self, rows: Sequence[Sequence[object]]) -> List[int]:
        """Fast path used by workload generators: validates and stores rows
        without index maintenance; call before creating indexes."""
        if self.secondary_indexes or len(self.primary) != 0:
            raise StorageError(
                f"bulk_load requires an empty, index-free table; "
                f"{self.name!r} has {len(self.primary)} rows and "
                f"{len(self.secondary_indexes)} secondary indexes"
            )
        rids = []
        validated_rows = []
        for row in rows:
            validated = self.schema.validate_row(row)
            rid = self._next_rid
            self._next_rid += 1
            self._rows[rid] = validated
            self.primary.insert(rid, validated)
            rids.append(rid)
            validated_rows.append(validated)
        self.modification_counter += len(rids)
        if rids:
            self._log_ops([{
                "op": "bulk_insert", "table": self.name,
                "rids": rids, "rows": validated_rows,
            }])
        return rids

    def delete_rid(self, rid: int, ctx: Optional[ExecutionContext] = None) -> Row:
        """Delete one row by RID through every index."""
        row = self.get_row(rid)
        applied: List = []
        try:
            self.primary.delete(rid, row, ctx)
            applied.append(self.primary)
            for index in self.secondary_indexes.values():
                trip(self.fault_injector, "table.secondary_apply")
                index.delete(rid, row, ctx)
                applied.append(index)
        except BaseException as exc:
            with self._rollback_guard():
                for structure in reversed(applied):
                    self._undo_delete(structure, rid, row)
            self._note_rollback(ctx, exc)
            raise
        del self._rows[rid]
        self.modification_counter += 1
        self._record_dml(ctx)
        self._log_ops([{
            "op": "delete", "table": self.name, "rids": [rid],
        }])
        return row

    def delete_rids(self, rids: Sequence[int],
                    ctx: Optional[ExecutionContext] = None) -> int:
        """Batch delete: lets columnstores amortise their per-statement
        row-group locator scans."""
        rows = {rid: self.get_row(rid) for rid in rids}
        applied: List[Tuple[SecondaryIndex, List[int]]] = []
        try:
            for structure in self.all_indexes:
                if structure is not self.primary:
                    trip(self.fault_injector, "table.secondary_apply")
                if isinstance(structure, ColumnstoreIndex):
                    # Internally all-or-nothing: on failure it has already
                    # undone its partial batch, so record it only when it
                    # returns.
                    structure.delete_many(list(rows), ctx)
                    applied.append((structure, list(rows)))
                else:
                    done: List[int] = []
                    applied.append((structure, done))
                    for rid, row in rows.items():
                        structure.delete(rid, row, ctx)
                        done.append(rid)
        except BaseException as exc:
            with self._rollback_guard():
                for structure, done in reversed(applied):
                    for rid in reversed(done):
                        self._undo_delete(structure, rid, rows[rid])
            self._note_rollback(ctx, exc)
            raise
        for rid in rows:
            del self._rows[rid]
        self.modification_counter += len(rows)
        if rows:
            self._record_dml(ctx)
            self._log_ops([{
                "op": "delete", "table": self.name, "rids": list(rows),
            }])
        return len(rows)

    def update_rid(self, rid: int, new_row: Sequence[object],
                   ctx: Optional[ExecutionContext] = None) -> None:
        """Replace one row by RID through every index."""
        self.update_rids([(rid, new_row)], ctx)

    def update_rids(
        self,
        updates: Sequence[Tuple[int, Sequence[object]]],
        ctx: Optional[ExecutionContext] = None,
    ) -> int:
        """Batch update, amortising columnstore locator scans per statement.

        Duplicate rids in ``updates`` collapse last-write-wins: each rid is
        applied to every index exactly once, with its final value (applying
        the same rid twice per statement would double-charge maintenance
        and corrupt delete buffers)."""
        final: Dict[int, Row] = {}
        for rid, new_row in updates:
            final[rid] = self.schema.validate_row(new_row)
        triples = [(rid, self.get_row(rid), validated)
                   for rid, validated in final.items()]
        applied: List[Tuple[SecondaryIndex, List[Tuple[int, Row, Row]]]] = []
        try:
            for structure in self.all_indexes:
                if structure is not self.primary:
                    trip(self.fault_injector, "table.secondary_apply")
                if isinstance(structure, ColumnstoreIndex):
                    # Internally all-or-nothing (see delete_rids).
                    structure.update_many(triples, ctx)
                    applied.append((structure, list(triples)))
                else:
                    done: List[Tuple[int, Row, Row]] = []
                    applied.append((structure, done))
                    for rid, old_row, new_row in triples:
                        structure.update(rid, old_row, new_row, ctx)
                        done.append((rid, old_row, new_row))
        except BaseException as exc:
            with self._rollback_guard():
                for structure, done in reversed(applied):
                    if isinstance(structure, ColumnstoreIndex):
                        structure.update_many(
                            [(rid, new_row, old_row)
                             for rid, old_row, new_row in done])
                    else:
                        for rid, old_row, new_row in reversed(done):
                            structure.update(rid, new_row, old_row)
            self._note_rollback(ctx, exc)
            raise
        for rid, _, new_row in triples:
            self._rows[rid] = new_row
        self.modification_counter += len(triples)
        if triples:
            self._record_dml(ctx)
            self._log_ops([{
                "op": "update", "table": self.name,
                "updates": [(rid, new_row)
                            for rid, _, new_row in triples],
            }])
        return len(triples)

    def fetch_columns(self, rid: int, ordinals: Sequence[int],
                      ctx: Optional[ExecutionContext] = None) -> Row:
        """RID lookup into the primary structure (the bookmark lookup that
        non-covering secondary indexes pay). One random page read cold."""
        if ctx is not None:
            ctx.charge_random_read(1)
            ctx.charge_serial_cpu(ctx.cost_model.seek_cpu_ms)
            # Bookmark lookups count against the primary structure, as in
            # sys.dm_db_index_usage_stats.
            self.primary.usage.record_lookup()
        row = self.get_row(rid)
        return tuple(row[i] for i in ordinals)

    def fetch_columns_batch(self, rids: Sequence[int],
                            ordinals: Sequence[int],
                            ctx: Optional[ExecutionContext] = None,
                            ) -> List[Row]:
        """Batched bookmark lookup: same modeled cost as ``len(rids)``
        single fetches (each rid is still one cold random read), charged
        in one call per batch instead of one per rid."""
        if ctx is not None and rids:
            ctx.charge_random_read(len(rids))
            ctx.charge_serial_cpu(len(rids) * ctx.cost_model.seek_cpu_ms)
            self.primary.usage.record_lookups(len(rids))
        get_row = self.get_row
        return [tuple(row[i] for i in ordinals)
                for row in map(get_row, rids)]
