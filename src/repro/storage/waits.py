"""Engine-wide wait statistics (the ``sys.dm_os_wait_stats`` analog).

SQL Server's tuning methodology starts from *wait statistics*: every
time a task blocks — on a latch, a memory grant, a page fault, the log
flush, or an exchange — the engine classifies the blocked interval
under a wait type and accumulates it server-wide and per session
(``sys.dm_os_wait_stats`` / ``sys.dm_exec_session_wait_stats``). This
module is that ledger for the repro engine. The blocking primitives
grown by the serving/durability/paging PRs each record into one
taxonomy entry:

======================  ====================================================
wait type               recorded by
======================  ====================================================
``LATCH_SH``            :class:`~repro.server.scheduler.DatabaseLatch`
                        shared acquires that actually blocked
``LATCH_EX``            exclusive acquires that actually blocked
``RESOURCE_SEMAPHORE``  :class:`~repro.server.scheduler.MemoryGrantPool`
                        grants that had to queue
``PAGEIOLATCH``         :class:`~repro.storage.bufferpool.BufferPool`
                        demand-paging faults (time spent in the loader)
``WRITELOG``            :class:`~repro.storage.wal.WriteAheadLog` commit
                        flush + fsync
``CXPACKET``            :func:`~repro.server.parallel_scan.morsel_scan`
                        coordinator blocked on a morsel worker's result
``SEGCACHE_MISS``       :class:`~repro.storage.columnstore.ColumnstoreIndex`
                        scan decode on a decoded-segment-cache miss
======================  ====================================================

Design rules (same contract as :mod:`repro.storage.telemetry`):

* **Observation-only.** Recording never touches
  :class:`~repro.engine.metrics.QueryMetrics` or charges modeled cost;
  figure outputs stay byte-identical. Wait *times* are real wall
  milliseconds and therefore nondeterministic — they never enter
  determinism digests (see :mod:`repro.storage.timeseries`).
* **Per-session == server-wide by construction.** Every
  :meth:`WaitStatsCollector.record` folds the wait into the server
  totals *and* the recording session's bucket under one lock. Work not
  attributable to a session (morsel workers, a standalone
  :class:`~repro.engine.executor.Executor`) lands in session ``0``, so
  summing the per-session table always reproduces the server table
  exactly — the invariant the differential test asserts.
* **Only genuine blocking counts.** An uncontended latch acquire or an
  immediately satisfied grant records nothing (SQL Server likewise only
  accumulates signal/resource time when a task actually waited).

Session attribution is thread-local: :meth:`session_scope` is entered
by :meth:`repro.server.session.Session.execute` around the whole
admission + execution window, so latch/grant/WAL waits on that thread
carry the session id. :meth:`statement` additionally captures a
per-statement wait profile (what EXPLAIN ANALYZE and the Query Store
surface); waits recorded on *other* threads (morsel workers) reach the
server/session ledgers but not the coordinator statement's profile —
the coordinator's own ``CXPACKET`` blocking covers the overlap.

Lives under :mod:`repro.storage` so storage structures can record waits
without a storage → engine import cycle.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

WAIT_LATCH_SH = "LATCH_SH"
WAIT_LATCH_EX = "LATCH_EX"
WAIT_RESOURCE_SEMAPHORE = "RESOURCE_SEMAPHORE"
WAIT_PAGEIOLATCH = "PAGEIOLATCH"
WAIT_WRITELOG = "WRITELOG"
WAIT_CXPACKET = "CXPACKET"
WAIT_SEGCACHE_MISS = "SEGCACHE_MISS"

#: Every wait type, in the canonical display order of
#: ``dm_os_wait_stats``.
WAIT_TYPES = (
    WAIT_LATCH_SH,
    WAIT_LATCH_EX,
    WAIT_RESOURCE_SEMAPHORE,
    WAIT_PAGEIOLATCH,
    WAIT_WRITELOG,
    WAIT_CXPACKET,
    WAIT_SEGCACHE_MISS,
)

_WAIT_TYPE_SET = frozenset(WAIT_TYPES)

#: Upper bounds (milliseconds) of the fixed wait-duration histogram the
#: Prometheus export surfaces; a final +Inf bucket is implicit. Fixed
#: buckets keep the exposition shape deterministic even when the
#: recorded durations are not.
HISTOGRAM_BUCKETS_MS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)


class WaitAccumulator:
    """Running totals for one (scope, wait type) pair."""

    __slots__ = ("waiting_tasks_count", "wait_time_ms", "max_wait_time_ms",
                 "bucket_counts")

    def __init__(self) -> None:
        self.waiting_tasks_count = 0
        self.wait_time_ms = 0.0
        self.max_wait_time_ms = 0.0
        #: One count per HISTOGRAM_BUCKETS_MS entry plus the +Inf bucket.
        self.bucket_counts = [0] * (len(HISTOGRAM_BUCKETS_MS) + 1)

    def record(self, ms: float) -> None:
        self.waiting_tasks_count += 1
        self.wait_time_ms += ms
        if ms > self.max_wait_time_ms:
            self.max_wait_time_ms = ms
        for i, bound in enumerate(HISTOGRAM_BUCKETS_MS):
            if ms <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def copy(self) -> "WaitAccumulator":
        out = WaitAccumulator()
        out.waiting_tasks_count = self.waiting_tasks_count
        out.wait_time_ms = self.wait_time_ms
        out.max_wait_time_ms = self.max_wait_time_ms
        out.bucket_counts = list(self.bucket_counts)
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot of this accumulator."""
        return {
            "waiting_tasks_count": self.waiting_tasks_count,
            "wait_time_ms": round(self.wait_time_ms, 4),
            "max_wait_time_ms": round(self.max_wait_time_ms, 4),
        }

    def __repr__(self) -> str:
        return (f"WaitAccumulator(n={self.waiting_tasks_count}, "
                f"ms={self.wait_time_ms:.3f})")


class WaitStatsCollector:
    """Server-wide + per-session wait accumulation with thread-local
    session and statement attribution.

    One collector is owned per :class:`~repro.storage.database.Database`
    (``database.waits``) and shared by every session, every morsel
    worker, and every storage structure of that database.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._server: Dict[str, WaitAccumulator] = {
            t: WaitAccumulator() for t in WAIT_TYPES}
        #: session_id -> wait_type -> accumulator; buckets materialize
        #: lazily on the session's first recorded wait.
        self._sessions: Dict[int, Dict[str, WaitAccumulator]] = {}
        self._local = threading.local()

    # -------------------------------------------------------- attribution
    @property
    def current_session_id(self) -> int:
        """The session id waits on *this thread* are attributed to
        (``0`` outside any :meth:`session_scope` — the unattributed /
        internal bucket)."""
        return getattr(self._local, "session_id", 0)

    @contextmanager
    def session_scope(self, session_id: int) -> Iterator[None]:
        """Attribute every wait recorded on this thread to
        ``session_id`` for the duration of the scope (nested scopes restore the
        outer attribution on exit)."""
        previous = getattr(self._local, "session_id", 0)
        self._local.session_id = int(session_id)
        try:
            yield
        finally:
            self._local.session_id = previous

    @contextmanager
    def statement(self) -> Iterator[Dict[str, List[float]]]:
        """Capture this thread's waits into a per-statement profile.

        Yields a dict ``wait_type -> [count, wait_ms]`` that fills in as
        the statement blocks. Nested scopes join the outer statement
        (compound executor paths stay one profile).
        """
        existing = getattr(self._local, "profile", None)
        if existing is not None:
            yield existing
            return
        profile: Dict[str, List[float]] = {}
        self._local.profile = profile
        try:
            yield profile
        finally:
            self._local.profile = None

    # ---------------------------------------------------------- recording
    def record(self, wait_type: str, ms: float) -> None:
        """Fold one completed wait of ``ms`` wall milliseconds into the
        server totals, the current session's bucket, and (when a
        :meth:`statement` scope is open on this thread) the statement
        profile."""
        if wait_type not in _WAIT_TYPE_SET:
            raise ValueError(f"unknown wait type {wait_type!r}")
        ms = max(0.0, float(ms))
        session_id = self.current_session_id
        with self._lock:
            self._server[wait_type].record(ms)
            per_session = self._sessions.get(session_id)
            if per_session is None:
                per_session = {}
                self._sessions[session_id] = per_session
            acc = per_session.get(wait_type)
            if acc is None:
                acc = WaitAccumulator()
                per_session[wait_type] = acc
            acc.record(ms)
        profile = getattr(self._local, "profile", None)
        if profile is not None:
            entry = profile.get(wait_type)
            if entry is None:
                profile[wait_type] = [1, ms]
            else:
                entry[0] += 1
                entry[1] += ms

    # ----------------------------------------------------------- readouts
    def server_stats(self) -> Dict[str, WaitAccumulator]:
        """A consistent copy of the server-wide accumulators, every wait
        type present (zeros included), in canonical order."""
        with self._lock:
            return {t: self._server[t].copy() for t in WAIT_TYPES}

    def session_stats(self) -> Dict[int, Dict[str, WaitAccumulator]]:
        """A consistent copy of the per-session accumulators (only
        sessions and wait types that recorded at least one wait),
        session ids ascending."""
        with self._lock:
            out: Dict[int, Dict[str, WaitAccumulator]] = {}
            for session_id in sorted(self._sessions):
                buckets = self._sessions[session_id]
                out[session_id] = {
                    t: buckets[t].copy() for t in WAIT_TYPES if t in buckets}
            return out

    def total_wait_ms(self, wait_type: Optional[str] = None) -> float:
        """Server-wide accumulated wait milliseconds, optionally for one
        type."""
        with self._lock:
            if wait_type is not None:
                return self._server[wait_type].wait_time_ms
            return sum(a.wait_time_ms for a in self._server.values())

    def total_waits(self, wait_type: Optional[str] = None) -> int:
        """Server-wide count of recorded waits, optionally for one type."""
        with self._lock:
            if wait_type is not None:
                return self._server[wait_type].waiting_tasks_count
            return sum(a.waiting_tasks_count for a in self._server.values())

    def reset(self) -> None:
        """Zero every accumulator, server-wide and per-session — the
        ``DBCC SQLPERF('sys.dm_os_wait_stats', CLEAR)`` analog, used
        between bench phases."""
        with self._lock:
            self._server = {t: WaitAccumulator() for t in WAIT_TYPES}
            self._sessions.clear()

    def __repr__(self) -> str:
        with self._lock:
            total = sum(a.waiting_tasks_count for a in self._server.values())
        return f"WaitStatsCollector(waits={total})"
