"""Scaled-down TPC-H data generator.

Implements the TPC-H schema (lineitem, orders, customer, part, supplier,
partsupp, nation, region) with the cardinality ratios of the official
benchmark, scaled so that a "scale factor" of 1.0 here produces
``lineitem`` rows in the tens of thousands rather than six million. Value
distributions follow the spec where they matter to the paper's
experiments: l_shipdate spans ~7 years with uniform spread (the update
statement Q4 selects by shipdate), l_quantity is 1-50, prices derive from
part retail prices, and n_nationkey has exactly 25 distinct values (the
size-estimation example of Section 4.4).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.schema import Column, TableSchema
from repro.core.types import DATE, INT, date_to_int, decimal, varchar
from repro.storage.database import Database
from repro.storage.table import Table

import datetime as _dt

#: Base cardinalities at scale factor 1.0 (scaled from TPC-H's 6M).
BASE_LINEITEM_ROWS = 60_000
BASE_ORDERS_ROWS = 15_000
BASE_CUSTOMER_ROWS = 1_500
BASE_PART_ROWS = 2_000
BASE_SUPPLIER_ROWS = 100
N_NATIONS = 25
N_REGIONS = 5

SHIPDATE_START = date_to_int(_dt.date(1992, 1, 1))
SHIPDATE_END = date_to_int(_dt.date(1998, 12, 1))


def lineitem_schema() -> TableSchema:
    """The 16-column TPC-H lineitem schema."""
    return TableSchema("lineitem", [
        Column("l_orderkey", INT, nullable=False),
        Column("l_partkey", INT, nullable=False),
        Column("l_suppkey", INT, nullable=False),
        Column("l_linenumber", INT, nullable=False),
        Column("l_quantity", decimal(2)),
        Column("l_extendedprice", decimal(2)),
        Column("l_discount", decimal(2)),
        Column("l_tax", decimal(2)),
        Column("l_returnflag", varchar(1)),
        Column("l_linestatus", varchar(1)),
        Column("l_shipdate", DATE),
        Column("l_commitdate", DATE),
        Column("l_receiptdate", DATE),
        Column("l_shipinstruct", varchar(25)),
        Column("l_shipmode", varchar(10)),
        Column("l_comment", varchar(44)),
    ])


SHIP_MODES = ("AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR")
SHIP_INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE",
                     "TAKE BACK RETURN")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW")


def generate_tpch(database: Database, scale: float = 1.0,
                  seed: int = 13) -> Dict[str, Table]:
    """Populate ``database`` with the TPC-H tables at ``scale``."""
    rng = random.Random(seed)
    n_lineitem = int(BASE_LINEITEM_ROWS * scale)
    n_orders = int(BASE_ORDERS_ROWS * scale)
    n_customer = max(100, int(BASE_CUSTOMER_ROWS * scale))
    n_part = max(200, int(BASE_PART_ROWS * scale))
    n_supplier = max(20, int(BASE_SUPPLIER_ROWS * scale))

    tables: Dict[str, Table] = {}

    region = database.create_table(TableSchema("region", [
        Column("r_regionkey", INT, nullable=False),
        Column("r_name", varchar(25)),
        Column("r_comment", varchar(152)),
    ]))
    region.bulk_load([
        (i, f"REGION{i}", f"comment {i}") for i in range(N_REGIONS)
    ])
    tables["region"] = region

    nation = database.create_table(TableSchema("nation", [
        Column("n_nationkey", INT, nullable=False),
        Column("n_name", varchar(25)),
        Column("n_regionkey", INT, nullable=False),
        Column("n_comment", varchar(152)),
    ]))
    nation.bulk_load([
        (i, f"NATION{i:02d}", i % N_REGIONS, f"comment {i}")
        for i in range(N_NATIONS)
    ])
    tables["nation"] = nation

    supplier = database.create_table(TableSchema("supplier", [
        Column("s_suppkey", INT, nullable=False),
        Column("s_name", varchar(25)),
        Column("s_nationkey", INT, nullable=False),
        Column("s_acctbal", decimal(2)),
    ]))
    supplier.bulk_load([
        (i, f"Supplier{i:05d}", rng.randrange(N_NATIONS),
         round(rng.uniform(-999.99, 9999.99), 2))
        for i in range(n_supplier)
    ])
    tables["supplier"] = supplier

    part = database.create_table(TableSchema("part", [
        Column("p_partkey", INT, nullable=False),
        Column("p_name", varchar(55)),
        Column("p_brand", varchar(10)),
        Column("p_type", varchar(25)),
        Column("p_size", INT),
        Column("p_retailprice", decimal(2)),
    ]))
    part.bulk_load([
        (i, f"part {i}", f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}",
         f"TYPE{rng.randrange(150)}", rng.randrange(1, 51),
         round(900 + (i % 1000) * 0.1 + rng.uniform(0, 100), 2))
        for i in range(n_part)
    ])
    tables["part"] = part

    customer = database.create_table(TableSchema("customer", [
        Column("c_custkey", INT, nullable=False),
        Column("c_name", varchar(25)),
        Column("c_nationkey", INT, nullable=False),
        Column("c_acctbal", decimal(2)),
        Column("c_mktsegment", varchar(10)),
    ]))
    segments = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                "HOUSEHOLD")
    customer.bulk_load([
        (i, f"Customer{i:06d}", rng.randrange(N_NATIONS),
         round(rng.uniform(-999.99, 9999.99), 2), rng.choice(segments))
        for i in range(n_customer)
    ])
    tables["customer"] = customer

    orders = database.create_table(TableSchema("orders", [
        Column("o_orderkey", INT, nullable=False),
        Column("o_custkey", INT, nullable=False),
        Column("o_orderstatus", varchar(1)),
        Column("o_totalprice", decimal(2)),
        Column("o_orderdate", DATE),
        Column("o_orderpriority", varchar(15)),
    ]))
    order_rows = []
    for i in range(n_orders):
        order_date = rng.randrange(SHIPDATE_START, SHIPDATE_END - 200)
        order_rows.append((
            i, rng.randrange(n_customer), rng.choice("OFP"),
            round(rng.uniform(1000, 500000), 2), order_date,
            rng.choice(ORDER_PRIORITIES),
        ))
    orders.bulk_load(order_rows)
    tables["orders"] = orders

    lineitem = database.create_table(lineitem_schema())
    lineitem_rows = []
    lines_per_order = max(1, n_lineitem // max(1, n_orders))
    i = 0
    while len(lineitem_rows) < n_lineitem:
        orderkey = i % n_orders
        order_date = order_rows[orderkey][4]
        for line in range(1, rng.randrange(1, 2 * lines_per_order + 1) + 1):
            if len(lineitem_rows) >= n_lineitem:
                break
            quantity = float(rng.randrange(1, 51))
            partkey = rng.randrange(n_part)
            price = round(quantity * (900 + partkey % 1000) * 0.001 + 1.0, 2)
            ship_date = min(SHIPDATE_END,
                            order_date + rng.randrange(1, 122))
            lineitem_rows.append((
                orderkey, partkey, rng.randrange(n_supplier), line,
                quantity, price, round(rng.randrange(0, 11) * 0.01, 2),
                round(rng.randrange(0, 9) * 0.01, 2),
                rng.choice("RAN"), rng.choice("OF"),
                ship_date, ship_date + rng.randrange(1, 31),
                ship_date + rng.randrange(1, 31),
                rng.choice(SHIP_INSTRUCTIONS), rng.choice(SHIP_MODES),
                f"comment {len(lineitem_rows)}",
            ))
        i += 1
    lineitem.bulk_load(lineitem_rows)
    tables["lineitem"] = lineitem
    return tables


def q4_update(n_rows: int, ship_date: str) -> str:
    """The paper's Q4: UPDATE TOP (N) ... WHERE l_shipdate = date."""
    return (f"UPDATE TOP ({n_rows}) lineitem SET l_quantity += 1, "
            f"l_extendedprice += 0.01 WHERE l_shipdate = '{ship_date}'")


def q5_scan(ship_date: str) -> str:
    """The paper's Q5: revenue aggregate over a one-day shipdate window."""
    return (
        "SELECT sum(l_quantity) sum_quantity, "
        "sum(l_extendedprice * (1 - l_discount)) revenue "
        f"FROM lineitem WHERE l_shipdate BETWEEN '{ship_date}' "
        f"AND DATEADD(day, 1, '{ship_date}')"
    )


def random_ship_date(rng: random.Random) -> str:
    """A random date within the populated l_shipdate range."""
    day = rng.randrange(SHIPDATE_START + 30, SHIPDATE_END - 30)
    return (_dt.date(1970, 1, 1) + _dt.timedelta(days=day)).isoformat()


def analytic_queries() -> List[str]:
    """A TPC-H-flavoured read-only query set in the supported SQL subset
    (pricing summary, revenue by nation/segment, shipping modes, ...)."""
    return [
        # Q1-like pricing summary
        "SELECT l_returnflag, l_linestatus, sum(l_quantity) sum_qty, "
        "sum(l_extendedprice) sum_base, "
        "sum(l_extendedprice * (1 - l_discount)) sum_disc, "
        "count(*) count_order FROM lineitem "
        "WHERE l_shipdate <= '1998-09-02' "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus",
        # Q6-like forecasting revenue change
        "SELECT sum(l_extendedprice * l_discount) revenue FROM lineitem "
        "WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-12-31' "
        "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        # revenue per nation for one market segment
        "SELECT n.n_name, sum(l.l_extendedprice * (1 - l.l_discount)) rev "
        "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
        "JOIN customer c ON o.o_custkey = c.c_custkey "
        "JOIN nation n ON c.c_nationkey = n.n_nationkey "
        "WHERE o.o_orderdate >= '1994-01-01' "
        "GROUP BY n.n_name ORDER BY n.n_name",
        # shipping-mode priority counts
        "SELECT l_shipmode, count(*) cnt FROM lineitem "
        "WHERE l_receiptdate >= '1994-01-01' AND "
        "l_receiptdate < '1995-01-01' GROUP BY l_shipmode "
        "ORDER BY l_shipmode",
        # selective single-order lookup (OLTP-ish point query)
        "SELECT sum(l_extendedprice) FROM lineitem WHERE l_orderkey = 42",
    ]
