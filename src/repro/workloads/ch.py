"""CH benchmark: TPC-C plus TPC-H-like analytic queries (Cole et al.).

"The CH benchmark is an extension of the TPC-C benchmark and schema with
three additional tables and 22 additional queries (modeled along the
TPC-H queries)" (Section 5.1). This module adds the three tables
(supplier, nation, region) to a TPC-C database and provides the analytic
query set, adapted to the engine's SQL subset: queries whose original
formulation needs correlated subqueries / EXISTS / HAVING are flattened
to variants that preserve their access-path character (which tables are
scanned, how selective the filters are, which joins appear) — the
properties Figure 11 depends on.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.schema import Column, TableSchema
from repro.core.types import INT, decimal, varchar
from repro.storage.database import Database
from repro.storage.table import Table
from repro.workloads.tpcc import (
    DISTRICTS_PER_WAREHOUSE,
    N_ITEMS,
    ORDERS_PER_DISTRICT,
    STOCK_PER_WAREHOUSE,
    generate_tpcc,
)

N_NATIONS = 25
N_REGIONS = 5
SUPPLIERS = 200


def generate_ch(database: Database, n_warehouses: int = 2,
                seed: int = 37) -> Dict[str, Table]:
    """TPC-C tables plus the CH additions (supplier, nation, region)."""
    tables = generate_tpcc(database, n_warehouses=n_warehouses, seed=seed)
    rng = random.Random(seed + 1)

    region = database.create_table(TableSchema("region", [
        Column("r_regionkey", INT, nullable=False),
        Column("r_name", varchar(25)),
    ]))
    region.bulk_load([(i, f"REGION{i}") for i in range(N_REGIONS)])
    tables["region"] = region

    nation = database.create_table(TableSchema("nation", [
        Column("n_nationkey", INT, nullable=False),
        Column("n_name", varchar(25)),
        Column("n_regionkey", INT, nullable=False),
    ]))
    nation.bulk_load([
        (i, f"NATION{i:02d}", i % N_REGIONS) for i in range(N_NATIONS)
    ])
    tables["nation"] = nation

    supplier = database.create_table(TableSchema("supplier", [
        Column("su_suppkey", INT, nullable=False),
        Column("su_name", varchar(25)),
        Column("su_nationkey", INT, nullable=False),
        Column("su_acctbal", decimal(2)),
    ]))
    supplier.bulk_load([
        (i, f"Supplier{i:04d}", rng.randrange(N_NATIONS),
         round(rng.uniform(-999, 9999), 2))
        for i in range(SUPPLIERS)
    ])
    tables["supplier"] = supplier
    return tables


def apply_ch_btree_design(database: Database) -> None:
    """B+ tree-only physical design for CH: the TPC-C OLTP design plus
    key B+ trees on the three analytic tables."""
    from repro.workloads.tpcc import apply_oltp_btree_design
    apply_oltp_btree_design(database)
    database.table("region").set_primary_btree(["r_regionkey"])
    database.table("nation").set_primary_btree(["n_nationkey"])
    database.table("supplier").set_primary_btree(["su_suppkey"])


def apply_ch_hybrid_design(database: Database) -> None:
    """Hybrid design: the B+ tree OLTP design plus secondary
    columnstores on the analytics-heavy tables (order_line, orders,
    stock, customer) — the kind of design the extended DTA recommends
    for CH."""
    apply_ch_btree_design(database)
    for name in ("order_line", "orders", "stock", "customer"):
        database.table(name).create_secondary_columnstore(f"csi_{name}")


def ch_analytic_queries() -> List[Tuple[str, str]]:
    """The CH-benCHmark analytic queries as (name, sql) pairs.

    Adapted to the supported SQL subset; each adaptation preserves the
    original query's table footprint and selectivity character.
    """
    return [
        ("Q1", "SELECT ol_number, sum(ol_quantity) sum_qty, "
               "sum(ol_amount) sum_amount, avg(ol_quantity) avg_qty, "
               "count(*) count_order FROM order_line "
               "WHERE ol_delivery_d > 0 GROUP BY ol_number "
               "ORDER BY ol_number"),
        ("Q3", "SELECT o.o_id, o.o_entry_d, sum(ol.ol_amount) revenue "
               "FROM orders o JOIN order_line ol ON o.o_id = ol.ol_o_id "
               "JOIN customer c ON o.o_c_id = c.c_id "
               "WHERE c.c_state = 'CA' AND o.o_entry_d < 100 "
               "GROUP BY o.o_id, o.o_entry_d ORDER BY o.o_id"),
        ("Q4", "SELECT o_ol_cnt, count(*) order_count FROM orders "
               "WHERE o_entry_d BETWEEN 100 AND 500 "
               "GROUP BY o_ol_cnt ORDER BY o_ol_cnt"),
        ("Q5", "SELECT n.n_name, sum(ol.ol_amount) revenue "
               "FROM order_line ol "
               "JOIN supplier su ON ol.ol_supply_w_id = su.su_suppkey "
               "JOIN nation n ON su.su_nationkey = n.n_nationkey "
               "GROUP BY n.n_name ORDER BY n.n_name"),
        ("Q6", "SELECT sum(ol_amount) revenue FROM order_line "
               "WHERE ol_delivery_d >= 0 AND ol_quantity BETWEEN 1 AND 10"),
        ("Q7", "SELECT su.su_nationkey, sum(ol.ol_amount) revenue "
               "FROM order_line ol "
               "JOIN supplier su ON ol.ol_supply_w_id = su.su_suppkey "
               "WHERE ol.ol_delivery_d > 0 "
               "GROUP BY su.su_nationkey ORDER BY su.su_nationkey"),
        ("Q12", "SELECT o_ol_cnt, count(*) cnt FROM orders "
                "WHERE o_carrier_id BETWEEN 1 AND 2 "
                "GROUP BY o_ol_cnt ORDER BY o_ol_cnt"),
        ("Q14", "SELECT sum(ol.ol_amount) revenue FROM order_line ol "
                "JOIN item i ON ol.ol_i_id = i.i_id "
                "WHERE i.i_price > 50"),
        ("Q19", "SELECT sum(ol.ol_amount) revenue FROM order_line ol "
                "JOIN item i ON ol.ol_i_id = i.i_id "
                "WHERE i.i_price BETWEEN 10 AND 20 "
                "AND ol.ol_quantity BETWEEN 1 AND 5"),
    ]


def ch_point_queries(n_warehouses: int, seed: int = 41) -> List[Tuple[str, str]]:
    """Selective single-key analytic queries (OLTP-flavoured reads) that
    round out the H side of the mix."""
    rng = random.Random(seed)
    w = rng.randrange(n_warehouses)
    d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
    o = rng.randrange(ORDERS_PER_DISTRICT)
    return [
        ("Q-order", f"SELECT sum(ol_amount) FROM order_line "
                    f"WHERE ol_w_id = {w} AND ol_d_id = {d} "
                    f"AND ol_o_id = {o}"),
        ("Q-stock", f"SELECT count(*) FROM stock WHERE s_w_id = {w} "
                    f"AND s_quantity < 15"),
    ]
