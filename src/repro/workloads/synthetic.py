"""Synthetic micro-benchmark data (Section 3.1).

"Synthetic data set consists of tables with different numbers of columns.
Each column contains uniformly distributed 32-bit integers in range from
0 to 2^31 - 1 (similar to Kester et al.)." — scaled down in row count,
with the same uniform-domain property so that predicate selectivity maps
linearly onto the value domain.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import AdvisorError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.storage.database import Database
from repro.storage.table import Table

DOMAIN = 2 ** 31 - 1

#: The selectivity grid of Figures 1, 2, 3, 12, 13 (percent).
PAPER_SELECTIVITIES_PCT = (
    0.0, 0.00001, 0.0001, 0.001, 0.01, 0.05, 0.09, 0.4, 1.0, 10.0, 30.0,
    50.0, 100.0,
)


def make_uniform_table(
    database: Database,
    name: str,
    n_rows: int,
    n_columns: int = 1,
    seed: int = 0,
    sorted_on: Optional[str] = None,
    domain: int = DOMAIN,
) -> Table:
    """Create ``name`` with ``n_columns`` uniform integer columns.

    Columns are named ``col1..colN``. When ``sorted_on`` names a column,
    rows are loaded in that column's sorted order — the setup that lets a
    columnstore build produce disjoint per-segment min/max ranges
    (the "CSI sorted" variant of Figure 2).
    """
    if n_columns < 1:
        raise AdvisorError("need at least one column")
    columns = [Column(f"col{i + 1}", INT, nullable=False)
               for i in range(n_columns)]
    table = database.create_table(TableSchema(name, columns))
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(domain) for _ in range(n_columns))
        for _ in range(n_rows)
    ]
    if sorted_on is not None:
        ordinal = table.schema.ordinal(sorted_on)
        rows.sort(key=lambda row: row[ordinal])
    table.bulk_load(rows)
    return table


def selectivity_to_threshold(selectivity_pct: float,
                             domain: int = DOMAIN) -> int:
    """Predicate constant for ``col < X`` hitting ``selectivity_pct`` of a
    uniform column (the paper's Q1 parameterization)."""
    fraction = max(0.0, min(100.0, selectivity_pct)) / 100.0
    return int(domain * fraction)


def q1_scan(selectivity_pct: float, table: str = "micro",
            column: str = "col1") -> str:
    """Q1: SELECT sum(col1) FROM table WHERE col1 < {threshold}."""
    threshold = selectivity_to_threshold(selectivity_pct)
    return f"SELECT sum({column}) FROM {table} WHERE {column} < {threshold}"


def q2_sort(selectivity_pct: float, table: str = "micro2") -> str:
    """Q2: filter on col1, explicit ORDER BY col2 (Figure 3)."""
    threshold = selectivity_to_threshold(selectivity_pct)
    return (f"SELECT col1, col2 FROM {table} WHERE col1 < {threshold} "
            f"ORDER BY col2")


def q3_group_by(table: str = "micro3") -> str:
    """Q3: GROUP BY col1 with sum(col2) (Figure 4)."""
    return f"SELECT col1, sum(col2) FROM {table} GROUP BY col1"


def make_group_table(
    database: Database,
    name: str,
    n_rows: int,
    n_groups: int,
    seed: int = 0,
) -> Table:
    """Two-column table where col1 has exactly ``n_groups`` distinct
    values (Figure 4's group-count sweep)."""
    table = database.create_table(TableSchema(name, [
        Column("col1", INT, nullable=False),
        Column("col2", INT, nullable=False),
    ]))
    rng = random.Random(seed)
    rows = [
        (rng.randrange(n_groups), rng.randrange(DOMAIN))
        for _ in range(n_rows)
    ]
    table.bulk_load(rows)
    return table
