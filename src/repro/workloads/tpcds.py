"""Scaled-down TPC-DS-style star schema and query workload.

TPC-DS is a decision-support benchmark over a retail star/snowflake
schema (sales facts, many dimensions) with 97 query templates mixing
very selective dimension-driven lookups with large scan-and-aggregate
reports — exactly the mix that makes hybrid physical designs win in the
paper's Figure 9(a).

This module builds two fact tables (``store_sales``, ``web_sales``) and
six dimensions, and generates a 97-query workload from parameterized
templates spanning the same spectrum: point lookups, tight dimension
filters joined into facts, medium-range reports, and full-scan rollups.
Cardinalities are scaled down ~1000x; the schema keeps TPC-DS's naming
conventions and foreign-key layout.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.schema import Column, TableSchema
from repro.core.types import DATE, INT, date_to_int, decimal, varchar
from repro.storage.database import Database
from repro.storage.table import Table

import datetime as _dt

#: Base cardinalities at scale 1.0.
BASE_STORE_SALES = 60_000
BASE_WEB_SALES = 25_000
N_DATES = 1826  # five years of date_dim
N_ITEMS = 2_000
N_CUSTOMERS = 3_000
N_ADDRESSES = 1_000
N_STORES = 20
N_DEMOGRAPHICS = 144

DATE_START = date_to_int(_dt.date(1998, 1, 1))

CATEGORIES = ("Books", "Electronics", "Home", "Jewelry", "Men", "Music",
              "Shoes", "Sports", "Children", "Women")
STATES = ("CA", "GA", "IL", "NY", "TX", "WA", "TN", "OH", "MI", "FL")


def generate_tpcds(database: Database, scale: float = 1.0,
                   seed: int = 29) -> Dict[str, Table]:
    """Populate ``database`` with the scaled TPC-DS star schema."""
    rng = random.Random(seed)
    tables: Dict[str, Table] = {}

    date_dim = database.create_table(TableSchema("date_dim", [
        Column("d_date_sk", INT, nullable=False),
        Column("d_date", DATE),
        Column("d_year", INT),
        Column("d_moy", INT),
        Column("d_dow", INT),
    ]))
    date_rows = []
    for i in range(N_DATES):
        day = DATE_START + i
        date = _dt.date(1970, 1, 1) + _dt.timedelta(days=day)
        date_rows.append((i, day, date.year, date.month, date.weekday()))
    date_dim.bulk_load(date_rows)
    tables["date_dim"] = date_dim

    item = database.create_table(TableSchema("item", [
        Column("i_item_sk", INT, nullable=False),
        Column("i_category", varchar(20)),
        Column("i_brand_id", INT),
        Column("i_current_price", decimal(2)),
        Column("i_manager_id", INT),
    ]))
    item.bulk_load([
        (i, rng.choice(CATEGORIES), rng.randrange(1, 1000),
         round(rng.uniform(0.5, 300.0), 2), rng.randrange(1, 100))
        for i in range(N_ITEMS)
    ])
    tables["item"] = item

    customer_address = database.create_table(TableSchema(
        "customer_address", [
            Column("ca_address_sk", INT, nullable=False),
            Column("ca_state", varchar(2)),
            Column("ca_gmt_offset", INT),
        ]))
    customer_address.bulk_load([
        (i, rng.choice(STATES), rng.choice((-8, -7, -6, -5)))
        for i in range(N_ADDRESSES)
    ])
    tables["customer_address"] = customer_address

    customer = database.create_table(TableSchema("customer", [
        Column("c_customer_sk", INT, nullable=False),
        Column("c_current_addr_sk", INT, nullable=False),
        Column("c_birth_year", INT),
        Column("c_preferred_cust_flag", varchar(1)),
    ]))
    customer.bulk_load([
        (i, rng.randrange(N_ADDRESSES), rng.randrange(1930, 2000),
         rng.choice("YN"))
        for i in range(N_CUSTOMERS)
    ])
    tables["customer"] = customer

    store = database.create_table(TableSchema("store", [
        Column("s_store_sk", INT, nullable=False),
        Column("s_state", varchar(2)),
        Column("s_number_employees", INT),
    ]))
    store.bulk_load([
        (i, rng.choice(STATES), rng.randrange(200, 300))
        for i in range(N_STORES)
    ])
    tables["store"] = store

    household_demographics = database.create_table(TableSchema(
        "household_demographics", [
            Column("hd_demo_sk", INT, nullable=False),
            Column("hd_dep_count", INT),
            Column("hd_vehicle_count", INT),
        ]))
    household_demographics.bulk_load([
        (i, i % 10, i % 5) for i in range(N_DEMOGRAPHICS)
    ])
    tables["household_demographics"] = household_demographics

    def sales_rows(n: int) -> List[Tuple]:
        """Generate ``n`` fact rows with valid foreign keys."""
        rows = []
        for i in range(n):
            quantity = rng.randrange(1, 100)
            price = round(rng.uniform(1.0, 300.0), 2)
            rows.append((
                rng.randrange(N_DATES),          # sold_date_sk
                rng.randrange(N_ITEMS),          # item_sk
                rng.randrange(N_CUSTOMERS),      # customer_sk
                rng.randrange(N_STORES),         # store_sk
                rng.randrange(N_DEMOGRAPHICS),   # hdemo_sk
                i,                               # ticket_number
                quantity,
                price,
                round(price * quantity, 2),
                round(price * quantity * rng.uniform(0, 0.2), 2),
            ))
        return rows

    store_sales = database.create_table(TableSchema("store_sales", [
        Column("ss_sold_date_sk", INT, nullable=False),
        Column("ss_item_sk", INT, nullable=False),
        Column("ss_customer_sk", INT, nullable=False),
        Column("ss_store_sk", INT, nullable=False),
        Column("ss_hdemo_sk", INT, nullable=False),
        Column("ss_ticket_number", INT, nullable=False),
        Column("ss_quantity", INT),
        Column("ss_list_price", decimal(2)),
        Column("ss_ext_sales_price", decimal(2)),
        Column("ss_net_profit", decimal(2)),
    ]))
    store_sales.bulk_load(sales_rows(int(BASE_STORE_SALES * scale)))
    tables["store_sales"] = store_sales

    web_sales = database.create_table(TableSchema("web_sales", [
        Column("ws_sold_date_sk", INT, nullable=False),
        Column("ws_item_sk", INT, nullable=False),
        Column("ws_bill_customer_sk", INT, nullable=False),
        Column("ws_quantity", INT),
        Column("ws_ext_sales_price", decimal(2)),
        Column("ws_net_profit", decimal(2)),
    ]))
    web_rows = [
        (rng.randrange(N_DATES), rng.randrange(N_ITEMS),
         rng.randrange(N_CUSTOMERS), rng.randrange(1, 100),
         round(rng.uniform(1.0, 5000.0), 2),
         round(rng.uniform(-500.0, 2000.0), 2))
        for _ in range(int(BASE_WEB_SALES * scale))
    ]
    web_sales.bulk_load(web_rows)
    tables["web_sales"] = web_sales
    return tables


def generate_queries(n_queries: int = 97, seed: int = 31) -> List[str]:
    """Build a TPC-DS-like workload from parameterized templates.

    The template mix follows the benchmark's character: ~30% tightly
    selective dimension-driven queries (seek-friendly), ~40% medium
    star-join reports, ~30% broad scan/rollup queries (columnstore
    territory).
    """
    rng = random.Random(seed)
    queries: List[str] = []
    makers = (
        [_point_lookup, _date_window_report, _selective_dim_join] * 10
        + [_category_report, _store_rollup, _demographic_join] * 13
        + [_full_rollup, _web_report] * 15
    )
    for i in range(n_queries):
        maker = makers[i % len(makers)]
        queries.append(maker(rng))
    return queries


def _point_lookup(rng: random.Random) -> str:
    ticket = rng.randrange(BASE_STORE_SALES)
    return ("SELECT sum(ss_ext_sales_price) FROM store_sales "
            f"WHERE ss_ticket_number = {ticket}")


def _date_window_report(rng: random.Random) -> str:
    start = rng.randrange(N_DATES - 40)
    return (
        "SELECT sum(ss.ss_quantity) q, sum(ss.ss_ext_sales_price) rev "
        "FROM store_sales ss JOIN date_dim d "
        "ON ss.ss_sold_date_sk = d.d_date_sk "
        f"WHERE d.d_date_sk BETWEEN {start} AND {start + 6}"
    )


def _selective_dim_join(rng: random.Random) -> str:
    manager = rng.randrange(1, 100)
    return (
        "SELECT i.i_category, sum(ss.ss_net_profit) profit "
        "FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk "
        f"WHERE i.i_manager_id = {manager} "
        "GROUP BY i.i_category ORDER BY i.i_category"
    )


def _category_report(rng: random.Random) -> str:
    category = rng.choice(CATEGORIES)
    return (
        "SELECT i.i_brand_id, sum(ss.ss_ext_sales_price) rev "
        "FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk "
        f"WHERE i.i_category = '{category}' "
        "GROUP BY i.i_brand_id ORDER BY i.i_brand_id"
    )


def _store_rollup(rng: random.Random) -> str:
    state = rng.choice(STATES)
    return (
        "SELECT s.s_store_sk, sum(ss.ss_net_profit) profit "
        "FROM store_sales ss JOIN store s ON ss.ss_store_sk = s.s_store_sk "
        f"WHERE s.s_state = '{state}' "
        "GROUP BY s.s_store_sk ORDER BY s.s_store_sk"
    )


def _demographic_join(rng: random.Random) -> str:
    deps = rng.randrange(10)
    vehicles = rng.randrange(5)
    return (
        "SELECT count(*) cnt FROM store_sales ss "
        "JOIN household_demographics hd "
        "ON ss.ss_hdemo_sk = hd.hd_demo_sk "
        f"WHERE hd.hd_dep_count = {deps} "
        f"AND hd.hd_vehicle_count = {vehicles}"
    )


def _full_rollup(rng: random.Random) -> str:
    return (
        "SELECT ss_store_sk, sum(ss_quantity) q, "
        "sum(ss_ext_sales_price) rev, sum(ss_net_profit) profit "
        "FROM store_sales GROUP BY ss_store_sk ORDER BY ss_store_sk"
    )


def _web_report(rng: random.Random) -> str:
    year_start = rng.randrange(N_DATES - 400)
    return (
        "SELECT d.d_moy, sum(ws.ws_ext_sales_price) rev "
        "FROM web_sales ws JOIN date_dim d "
        "ON ws.ws_sold_date_sk = d.d_date_sk "
        f"WHERE d.d_date_sk BETWEEN {year_start} AND {year_start + 365} "
        "GROUP BY d.d_moy ORDER BY d.d_moy"
    )
