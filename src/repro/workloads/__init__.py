"""Workload and data generators for the reproduction benchmarks."""
