"""Scaled-down TPC-C schema, data generator, and transaction mix.

TPC-C is the OLTP side of the CH benchmark (Section 5.1). The schema
keeps the benchmark's table and column structure (warehouse, district,
customer, orders, order_line, new_order, item, stock, history) with
per-warehouse cardinalities scaled down ~10x. Transactions are expressed
as lists of SQL statements in the supported subset; the mixed-workload
simulator measures their solo cost and replays them under concurrency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.schema import Column, TableSchema
from repro.core.types import DATE, INT, decimal, varchar
from repro.storage.database import Database
from repro.storage.table import Table

#: Scaled per-warehouse cardinalities (spec values in comments).
DISTRICTS_PER_WAREHOUSE = 10         # 10
CUSTOMERS_PER_DISTRICT = 300         # 3000
ORDERS_PER_DISTRICT = 300            # 3000
N_ITEMS = 2_000                      # 100_000
STOCK_PER_WAREHOUSE = 2_000          # 100_000
AVG_LINES_PER_ORDER = 10


def generate_tpcc(database: Database, n_warehouses: int = 2,
                  seed: int = 17) -> Dict[str, Table]:
    """Populate ``database`` with the scaled TPC-C tables."""
    rng = random.Random(seed)
    tables: Dict[str, Table] = {}

    warehouse = database.create_table(TableSchema("warehouse", [
        Column("w_id", INT, nullable=False),
        Column("w_name", varchar(10)),
        Column("w_state", varchar(2)),
        Column("w_tax", decimal(4)),
        Column("w_ytd", decimal(2)),
    ]))
    warehouse.bulk_load([
        (w, f"WH{w}", "CA", round(rng.uniform(0, 0.2), 4), 300000.0)
        for w in range(n_warehouses)
    ])
    tables["warehouse"] = warehouse

    district = database.create_table(TableSchema("district", [
        Column("d_id", INT, nullable=False),
        Column("d_w_id", INT, nullable=False),
        Column("d_tax", decimal(4)),
        Column("d_ytd", decimal(2)),
        Column("d_next_o_id", INT),
    ]))
    district.bulk_load([
        (d, w, round(rng.uniform(0, 0.2), 4), 30000.0,
         ORDERS_PER_DISTRICT + 1)
        for w in range(n_warehouses)
        for d in range(DISTRICTS_PER_WAREHOUSE)
    ])
    tables["district"] = district

    customer = database.create_table(TableSchema("customer", [
        Column("c_id", INT, nullable=False),
        Column("c_d_id", INT, nullable=False),
        Column("c_w_id", INT, nullable=False),
        Column("c_last", varchar(16)),
        Column("c_balance", decimal(2)),
        Column("c_ytd_payment", decimal(2)),
        Column("c_payment_cnt", INT),
        Column("c_state", varchar(2)),
    ]))
    lasts = ("BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI",
             "CALLY", "ATION", "EING")
    customer.bulk_load([
        (c, d, w, rng.choice(lasts) + rng.choice(lasts),
         round(rng.uniform(-100, 5000), 2), 10.0, 1, "CA")
        for w in range(n_warehouses)
        for d in range(DISTRICTS_PER_WAREHOUSE)
        for c in range(CUSTOMERS_PER_DISTRICT)
    ])
    tables["customer"] = customer

    item = database.create_table(TableSchema("item", [
        Column("i_id", INT, nullable=False),
        Column("i_name", varchar(24)),
        Column("i_price", decimal(2)),
    ]))
    item.bulk_load([
        (i, f"item{i}", round(rng.uniform(1, 100), 2))
        for i in range(N_ITEMS)
    ])
    tables["item"] = item

    stock = database.create_table(TableSchema("stock", [
        Column("s_i_id", INT, nullable=False),
        Column("s_w_id", INT, nullable=False),
        Column("s_quantity", INT),
        Column("s_ytd", INT),
        Column("s_order_cnt", INT),
    ]))
    stock.bulk_load([
        (i, w, rng.randrange(10, 101), 0, 0)
        for w in range(n_warehouses)
        for i in range(STOCK_PER_WAREHOUSE)
    ])
    tables["stock"] = stock

    orders = database.create_table(TableSchema("orders", [
        Column("o_id", INT, nullable=False),
        Column("o_d_id", INT, nullable=False),
        Column("o_w_id", INT, nullable=False),
        Column("o_c_id", INT, nullable=False),
        Column("o_entry_d", INT),
        Column("o_ol_cnt", INT),
        Column("o_carrier_id", INT),
    ]))
    order_rows = []
    order_line_rows = []
    entry = 0
    for w in range(n_warehouses):
        for d in range(DISTRICTS_PER_WAREHOUSE):
            for o in range(ORDERS_PER_DISTRICT):
                n_lines = rng.randrange(5, 16)
                order_rows.append((
                    o, d, w, rng.randrange(CUSTOMERS_PER_DISTRICT),
                    entry, n_lines, rng.randrange(1, 11)))
                for line in range(n_lines):
                    item_id = rng.randrange(N_ITEMS)
                    order_line_rows.append((
                        o, d, w, line, item_id, w,
                        rng.randrange(1, 11),
                        round(rng.uniform(1, 100), 2),
                        entry,
                    ))
                entry += 1
    orders.bulk_load(order_rows)
    tables["orders"] = orders

    order_line = database.create_table(TableSchema("order_line", [
        Column("ol_o_id", INT, nullable=False),
        Column("ol_d_id", INT, nullable=False),
        Column("ol_w_id", INT, nullable=False),
        Column("ol_number", INT, nullable=False),
        Column("ol_i_id", INT, nullable=False),
        Column("ol_supply_w_id", INT),
        Column("ol_quantity", INT),
        Column("ol_amount", decimal(2)),
        Column("ol_delivery_d", INT),
    ]))
    order_line.bulk_load(order_line_rows)
    tables["order_line"] = order_line

    new_order = database.create_table(TableSchema("new_order", [
        Column("no_o_id", INT, nullable=False),
        Column("no_d_id", INT, nullable=False),
        Column("no_w_id", INT, nullable=False),
    ]))
    new_order.bulk_load([
        (o, d, w)
        for w in range(n_warehouses)
        for d in range(DISTRICTS_PER_WAREHOUSE)
        for o in range(ORDERS_PER_DISTRICT - 30, ORDERS_PER_DISTRICT)
    ])
    tables["new_order"] = new_order

    history = database.create_table(TableSchema("history", [
        Column("h_c_id", INT, nullable=False),
        Column("h_w_id", INT, nullable=False),
        Column("h_amount", decimal(2)),
        Column("h_date", INT),
    ]))
    history.bulk_load([
        (rng.randrange(CUSTOMERS_PER_DISTRICT), rng.randrange(n_warehouses),
         10.0, i)
        for i in range(200 * n_warehouses)
    ])
    tables["history"] = history
    return tables


def apply_oltp_btree_design(database: Database) -> None:
    """The TPC-C B+ tree design: clustered key indexes on every table."""
    database.table("warehouse").set_primary_btree(["w_id"])
    database.table("district").set_primary_btree(["d_w_id", "d_id"])
    database.table("customer").set_primary_btree(
        ["c_w_id", "c_d_id", "c_id"])
    database.table("item").set_primary_btree(["i_id"])
    database.table("stock").set_primary_btree(["s_w_id", "s_i_id"])
    database.table("orders").set_primary_btree(
        ["o_w_id", "o_d_id", "o_id"])
    database.table("order_line").set_primary_btree(
        ["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"])
    database.table("new_order").set_primary_btree(
        ["no_w_id", "no_d_id", "no_o_id"])
    database.table("history").set_primary_btree(["h_w_id", "h_c_id"])


@dataclass
class Transaction:
    """One TPC-C transaction: a name and its SQL statements."""

    name: str
    statements: List[str]
    is_write: bool
    #: (warehouse, district) the transaction touches, for lock footprints.
    warehouse: int = 0
    district: int = 0


class TpccTransactionGenerator:
    """Generates the five TPC-C transaction types with spec frequencies
    (45% NewOrder, 43% Payment, 4% each of the rest)."""

    def __init__(self, n_warehouses: int, seed: int = 23):
        self.n_warehouses = n_warehouses
        self.rng = random.Random(seed)
        self._next_order_id = ORDERS_PER_DISTRICT + 1

    def next_transaction(self) -> Transaction:
        """Draw the next transaction per the TPC-C mix."""
        roll = self.rng.random()
        if roll < 0.45:
            return self.new_order()
        if roll < 0.88:
            return self.payment()
        if roll < 0.92:
            return self.order_status()
        if roll < 0.96:
            return self.delivery()
        return self.stock_level()

    def new_order(self) -> Transaction:
        """Build a NewOrder transaction."""
        rng = self.rng
        w = rng.randrange(self.n_warehouses)
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c = rng.randrange(CUSTOMERS_PER_DISTRICT)
        o_id = self._next_order_id
        self._next_order_id += 1
        n_lines = rng.randrange(5, 16)
        statements = [
            f"SELECT w_tax FROM warehouse WHERE w_id = {w}",
            f"UPDATE district SET d_next_o_id = d_next_o_id + 1 "
            f"WHERE d_w_id = {w} AND d_id = {d}",
            f"INSERT INTO orders VALUES ({o_id}, {d}, {w}, {c}, 0, "
            f"{n_lines}, 0)",
            f"INSERT INTO new_order VALUES ({o_id}, {d}, {w})",
        ]
        for line in range(n_lines):
            item_id = rng.randrange(N_ITEMS)
            statements.append(
                f"SELECT i_price FROM item WHERE i_id = {item_id}")
            statements.append(
                f"UPDATE stock SET s_quantity = s_quantity - 1, "
                f"s_ytd = s_ytd + 1, s_order_cnt = s_order_cnt + 1 "
                f"WHERE s_w_id = {w} AND s_i_id = "
                f"{item_id % STOCK_PER_WAREHOUSE}")
            statements.append(
                f"INSERT INTO order_line VALUES ({o_id}, {d}, {w}, {line}, "
                f"{item_id}, {w}, 1, 9.99, 0)")
        return Transaction("NewOrder", statements, True, w, d)

    def payment(self) -> Transaction:
        """Build a Payment transaction."""
        rng = self.rng
        w = rng.randrange(self.n_warehouses)
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c = rng.randrange(CUSTOMERS_PER_DISTRICT)
        amount = round(rng.uniform(1, 5000), 2)
        statements = [
            f"UPDATE warehouse SET w_ytd = w_ytd + {amount} "
            f"WHERE w_id = {w}",
            f"UPDATE district SET d_ytd = d_ytd + {amount} "
            f"WHERE d_w_id = {w} AND d_id = {d}",
            f"UPDATE customer SET c_balance = c_balance - {amount}, "
            f"c_ytd_payment = c_ytd_payment + {amount}, "
            f"c_payment_cnt = c_payment_cnt + 1 "
            f"WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}",
            f"INSERT INTO history VALUES ({c}, {w}, {amount}, 1)",
        ]
        return Transaction("Payment", statements, True, w, d)

    def order_status(self) -> Transaction:
        """Build an OrderStatus transaction."""
        rng = self.rng
        w = rng.randrange(self.n_warehouses)
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c = rng.randrange(CUSTOMERS_PER_DISTRICT)
        o = rng.randrange(ORDERS_PER_DISTRICT)
        statements = [
            f"SELECT c_balance, c_last FROM customer WHERE c_w_id = {w} "
            f"AND c_d_id = {d} AND c_id = {c}",
            f"SELECT sum(ol_amount) FROM order_line WHERE ol_w_id = {w} "
            f"AND ol_d_id = {d} AND ol_o_id = {o}",
        ]
        return Transaction("OrderStatus", statements, False, w, d)

    def delivery(self) -> Transaction:
        """Build a Delivery transaction."""
        rng = self.rng
        w = rng.randrange(self.n_warehouses)
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        o = rng.randrange(ORDERS_PER_DISTRICT - 30, ORDERS_PER_DISTRICT)
        statements = [
            f"UPDATE orders SET o_carrier_id = 7 WHERE o_w_id = {w} "
            f"AND o_d_id = {d} AND o_id = {o}",
            f"UPDATE order_line SET ol_delivery_d = 99 WHERE ol_w_id = {w} "
            f"AND ol_d_id = {d} AND ol_o_id = {o}",
        ]
        return Transaction("Delivery", statements, True, w, d)

    def stock_level(self) -> Transaction:
        """Build a StockLevel transaction."""
        rng = self.rng
        w = rng.randrange(self.n_warehouses)
        threshold = rng.randrange(10, 21)
        statements = [
            f"SELECT count(*) FROM stock WHERE s_w_id = {w} "
            f"AND s_quantity < {threshold}",
        ]
        return Transaction("StockLevel", statements, False, w, 0)
