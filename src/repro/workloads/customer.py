"""Synthetic analogs of the paper's five real customer workloads.

The paper evaluates DTA's hybrid recommendations on five proprietary
customer workloads characterized only by Table 2's aggregate statistics
and Figure 9's speedup distributions. Those workloads cannot be obtained,
so this module synthesizes workloads that match:

* Table 2's *shape* statistics — number of tables, average columns per
  table, number of queries, relative database size — at this
  repository's scale (row counts scaled ~1000x, join counts scaled ~2.5x
  for Cust5's 21.6-join queries);
* each workload's qualitative *query mix*, reverse-engineered from
  Figure 9: Cust1/Cust3 are dominated by highly selective queries (hybrid
  beats columnstore-only by >10x on a large fraction), Cust2 is
  scan-heavy (hybrid ~ columnstore, both far ahead of B+ tree-only),
  Cust4 is mixed, and Cust5 is a many-join workload over hundreds of
  small tables.

Each generated query belongs to one archetype:

* ``selective`` — tight predicate on a fact key (seek territory),
* ``scan``      — full-table aggregate (columnstore territory),
* ``medium``    — mid-selectivity range report,
* ``joins``     — a chain of dimension joins anchored on a fact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.schema import Column, TableSchema
from repro.core.types import INT, decimal, varchar
from repro.storage.database import Database
from repro.storage.table import Table


@dataclass(frozen=True)
class CustomerSpec:
    """Shape parameters for one synthesized customer workload."""

    name: str
    n_active_tables: int      # tables that hold data and receive queries
    n_stub_tables: int        # empty/near-empty tables (schema only)
    fact_rows: int            # rows in the largest fact table
    avg_columns: int          # average columns per active table
    n_queries: int
    #: archetype mix (selective, scan, medium, joins) summing to 1.0
    mix: Tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25)
    join_chain_length: int = 3
    seed: int = 101


#: Specs derived from Table 2 + Figure 9 (see module docstring).
CUSTOMER_SPECS: Dict[str, CustomerSpec] = {
    # 23 tables, 36 queries, selective-dominated (Fig 9(b): 30/36 queries
    # gain >10x over columnstore-only).
    "cust1": CustomerSpec("cust1", n_active_tables=8, n_stub_tables=15,
                          fact_rows=250_000, avg_columns=14, n_queries=36,
                          mix=(0.62, 0.08, 0.14, 0.16),
                          join_chain_length=3, seed=111),
    # 614 tables, 40 queries, scan-heavy (Fig 9(c): hybrid ~ CSI, big
    # wins over B+ tree-only).
    "cust2": CustomerSpec("cust2", n_active_tables=10, n_stub_tables=60,
                          fact_rows=80_000, avg_columns=23, n_queries=40,
                          mix=(0.10, 0.55, 0.20, 0.15),
                          join_chain_length=3, seed=222),
    # 3394 tables, 40 queries, selective-dominated with some scans.
    "cust3": CustomerSpec("cust3", n_active_tables=10, n_stub_tables=90,
                          fact_rows=100_000, avg_columns=26, n_queries=40,
                          mix=(0.50, 0.15, 0.20, 0.15),
                          join_chain_length=3, seed=333),
    # 22 tables, 24 queries, genuinely mixed.
    "cust4": CustomerSpec("cust4", n_active_tables=7, n_stub_tables=15,
                          fact_rows=100_000, avg_columns=20, n_queries=24,
                          mix=(0.25, 0.30, 0.25, 0.20),
                          join_chain_length=3, seed=444),
    # 474 small tables, 47 queries averaging 21.6 joins (scaled to ~8);
    # Figure 9(f) shows over half its queries gaining >10x over B+ tree-
    # only, so scans share the mix with the deep join chains.
    "cust5": CustomerSpec("cust5", n_active_tables=20, n_stub_tables=50,
                          fact_rows=15_000, avg_columns=6, n_queries=47,
                          mix=(0.15, 0.35, 0.15, 0.35),
                          join_chain_length=8, seed=555),
}


@dataclass
class CustomerWorkload:
    """Generated database content + query list for one customer."""

    spec: CustomerSpec
    fact_tables: List[str]
    dim_tables: List[str]
    queries: List[str] = field(default_factory=list)

    @property
    def n_tables(self) -> int:
        """Total tables generated (active + stubs)."""
        return (len(self.fact_tables) + len(self.dim_tables)
                + self.spec.n_stub_tables)


def generate_customer(database: Database, name: str) -> CustomerWorkload:
    """Populate ``database`` with the named customer workload."""
    spec = CUSTOMER_SPECS[name]
    rng = random.Random(spec.seed)
    n_facts = max(1, spec.n_active_tables // 3)
    n_dims = spec.n_active_tables - n_facts

    dim_tables: List[str] = []
    dim_cardinalities: Dict[str, int] = {}
    for d in range(n_dims):
        table_name = f"{name}_dim{d}"
        cardinality = rng.choice((50, 100, 200, 500, 1000))
        _make_dim(database, table_name, cardinality, spec, rng)
        dim_tables.append(table_name)
        dim_cardinalities[table_name] = cardinality

    fact_tables: List[str] = []
    fact_meta: Dict[str, List[str]] = {}
    for f in range(n_facts):
        table_name = f"{name}_fact{f}"
        rows = spec.fact_rows if f == 0 else spec.fact_rows // 2
        linked = rng.sample(dim_tables, min(len(dim_tables),
                                            spec.join_chain_length + 2))
        _make_fact(database, table_name, rows, linked, dim_cardinalities,
                   spec, rng)
        fact_tables.append(table_name)
        fact_meta[table_name] = linked

    for s in range(spec.n_stub_tables):
        stub = database.create_table(TableSchema(f"{name}_stub{s}", [
            Column("id", INT, nullable=False),
            Column("v", INT),
        ]))
        stub.bulk_load([(i, i) for i in range(4)])

    workload = CustomerWorkload(spec=spec, fact_tables=fact_tables,
                                dim_tables=dim_tables)
    workload.queries = _generate_queries(spec, fact_tables, fact_meta,
                                         dim_cardinalities, rng)
    return workload


def _make_dim(database: Database, table_name: str, cardinality: int,
              spec: CustomerSpec, rng: random.Random) -> Table:
    columns = [
        Column("id", INT, nullable=False),
        Column("label", varchar(16)),
        Column("attr", INT),
        Column("link", INT, nullable=False),
    ]
    table = database.create_table(TableSchema(table_name, columns))
    table.bulk_load([
        (i, f"{table_name}_{i}", rng.randrange(20), rng.randrange(50))
        for i in range(cardinality)
    ])
    return table


def _make_fact(database: Database, table_name: str, n_rows: int,
               linked_dims: List[str], dim_cardinalities: Dict[str, int],
               spec: CustomerSpec, rng: random.Random) -> Table:
    columns = [Column("id", INT, nullable=False)]
    for dim_name in linked_dims:
        columns.append(Column(f"fk_{dim_name}", INT, nullable=False))
    columns.append(Column("measure", INT))
    columns.append(Column("amount", decimal(2)))
    columns.append(Column("bucket", INT))
    extra = max(0, spec.avg_columns - len(columns))
    for e in range(extra):
        columns.append(Column(f"extra{e}", INT))
    table = database.create_table(TableSchema(table_name, columns))
    rows = []
    for i in range(n_rows):
        row = [i]
        for dim_name in linked_dims:
            row.append(rng.randrange(dim_cardinalities[dim_name]))
        row.append(rng.randrange(100_000))
        row.append(round(rng.uniform(0, 1000), 2))
        row.append(rng.randrange(50))
        row.extend(rng.randrange(1000) for _ in range(extra))
        rows.append(tuple(row))
    table.bulk_load(rows)
    return table


def _generate_queries(spec: CustomerSpec, fact_tables: List[str],
                      fact_meta: Dict[str, List[str]],
                      dim_cardinalities: Dict[str, int],
                      rng: random.Random) -> List[str]:
    makers = []
    sel, scan, medium, joins = spec.mix
    for fraction, maker in ((sel, _selective_query), (scan, _scan_query),
                            (medium, _medium_query), (joins, _join_query)):
        makers.extend([maker] * max(1, round(fraction * 100)))
    queries = []
    for _ in range(spec.n_queries):
        maker = rng.choice(makers)
        fact = rng.choice(fact_tables)
        queries.append(maker(fact, fact_meta[fact], dim_cardinalities,
                             spec, rng))
    return queries


def _selective_query(fact, dims, cards, spec, rng) -> str:
    # Tight predicate on a *non-key* column: the base design's clustered
    # key index cannot serve it, so a recommended secondary B+ tree is
    # the only alternative to scanning (the paper's customer workloads'
    # selective filters are on arbitrary attributes, not keys).
    low = rng.randrange(99_000)
    return (f"SELECT sum(amount) FROM {fact} "
            f"WHERE measure BETWEEN {low} AND {low + rng.randrange(5, 60)}")


def _scan_query(fact, dims, cards, spec, rng) -> str:
    return (f"SELECT bucket, sum(measure) m, sum(amount) a, count(*) c "
            f"FROM {fact} GROUP BY bucket ORDER BY bucket")


def _medium_query(fact, dims, cards, spec, rng) -> str:
    low = rng.randrange(80_000)
    return (f"SELECT bucket, count(*) c FROM {fact} "
            f"WHERE measure BETWEEN {low} AND {low + 15_000} "
            f"GROUP BY bucket ORDER BY bucket")


def _join_query(fact, dims, cards, spec, rng) -> str:
    chain = rng.sample(dims, min(len(dims), spec.join_chain_length))
    joins = []
    for dim_name in chain:
        joins.append(f"JOIN {dim_name} ON "
                     f"{fact}.fk_{dim_name} = {dim_name}.id")
    filter_dim = chain[0]
    attr = rng.randrange(20)
    return (
        f"SELECT sum({fact}.measure) FROM {fact} " + " ".join(joins)
        + f" WHERE {filter_dim}.attr = {attr}"
    )
