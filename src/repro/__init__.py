"""repro: a reproduction of "Columnstore and B+ tree - Are Hybrid
Physical Designs Important?" (SIGMOD 2018).

Public API highlights:

* :class:`repro.Database` / :class:`repro.Table` — the storage engine
  (heap, clustered/secondary B+ trees, primary/secondary columnstores).
* :class:`repro.Executor` — SQL execution with the paper's observables
  (elapsed time, CPU time, data read, memory, spills, plan shape).
* :class:`repro.TuningAdvisor` / :class:`repro.Workload` — the extended
  Database Engine Tuning Advisor recommending hybrid designs.
* :class:`repro.WhatIfSession` — hypothetical-index costing.
* :class:`repro.ConcurrencySimulator` — the multi-client discrete-event
  simulator behind the mixed-workload experiments.
* :mod:`repro.engine.dmv` — always-on DMV-style system views
  (``dm_db_index_usage_stats`` and friends), queryable through SQL and
  exportable as JSON or Prometheus text.
"""

from repro.advisor.advisor import (
    MODE_BTREE_ONLY,
    MODE_CSI_ONLY,
    MODE_HYBRID,
    Recommendation,
    TuningAdvisor,
)
from repro.advisor.workload import Workload, WorkloadStatement
from repro.core.schema import Column, SchemaBuilder, TableSchema
from repro.core.types import BIGINT, DATE, INT, XML, decimal, varchar
from repro.engine.concurrency import (
    ConcurrencySimulator,
    SimulationResult,
    StatementProfile,
)
from repro.engine.analyze import AnalyzedQuery
from repro.engine.dmv import (
    SYSTEM_VIEW_NAMES,
    dmv_snapshot,
    dmv_to_prometheus,
    unused_index_report,
)
from repro.engine.costs import DEFAULT_COST_MODEL, CostModel
from repro.engine.executor import Executor, QueryResult
from repro.engine.locks import READ_COMMITTED, SERIALIZABLE, SNAPSHOT
from repro.engine.metrics import ExecutionContext, OperatorSpan, QueryMetrics
from repro.engine.query_store import QueryStore
from repro.optimizer.catalog import Catalog
from repro.optimizer.whatif import (
    Configuration,
    WhatIfSession,
    hypothetical_btree,
    hypothetical_columnstore,
)
from repro.storage.checker import CheckResult, check_database, check_table
from repro.storage.database import Database
from repro.storage.faults import (
    INJECTION_POINTS,
    FaultInjector,
    InjectedFault,
)
from repro.storage.segment_cache import DecodedSegmentCache, SegmentCacheStats
from repro.storage.table import Table
from repro.storage.telemetry import (
    IndexUsageStats,
    LogicalClock,
    MissingIndexDetails,
    Telemetry,
)

__version__ = "1.0.0"

__all__ = [
    "AnalyzedQuery",
    "BIGINT",
    "DATE",
    "INT",
    "OperatorSpan",
    "QueryStore",
    "XML",
    "Catalog",
    "CheckResult",
    "Column",
    "Configuration",
    "ConcurrencySimulator",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Database",
    "DecodedSegmentCache",
    "SegmentCacheStats",
    "ExecutionContext",
    "Executor",
    "FaultInjector",
    "INJECTION_POINTS",
    "IndexUsageStats",
    "InjectedFault",
    "LogicalClock",
    "MODE_BTREE_ONLY",
    "MODE_CSI_ONLY",
    "MODE_HYBRID",
    "QueryMetrics",
    "QueryResult",
    "READ_COMMITTED",
    "Recommendation",
    "SERIALIZABLE",
    "SNAPSHOT",
    "SYSTEM_VIEW_NAMES",
    "SchemaBuilder",
    "SimulationResult",
    "StatementProfile",
    "MissingIndexDetails",
    "Table",
    "TableSchema",
    "Telemetry",
    "TuningAdvisor",
    "WhatIfSession",
    "Workload",
    "WorkloadStatement",
    "check_database",
    "check_table",
    "decimal",
    "dmv_snapshot",
    "dmv_to_prometheus",
    "hypothetical_btree",
    "hypothetical_columnstore",
    "unused_index_report",
    "varchar",
]
