"""Workload model for the tuning advisor.

A workload is a weighted set of SQL statements (Section 4.1: "a set of
SQL statements with associated weights"). Statements are parsed and bound
eagerly so candidate selection can inspect referenced tables/columns, and
classified into reads and updates — updates contribute index-maintenance
costs to the advisor's objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.errors import AdvisorError
from repro.sql.binder import (
    Binder,
    BoundDelete,
    BoundInsert,
    BoundSelect,
    BoundUpdate,
)
from repro.sql.parser import parse
from repro.storage.database import Database


@dataclass
class WorkloadStatement:
    """One statement with its weight (relative frequency)."""

    sql: str
    weight: float = 1.0
    params: Tuple[object, ...] = ()
    #: Filled in by Workload.bind()
    bound: object = None

    @property
    def is_select(self) -> bool:
        """Whether the bound statement is a SELECT."""
        return isinstance(self.bound, BoundSelect)

    @property
    def is_update(self) -> bool:
        """Whether the bound statement modifies data."""
        return isinstance(self.bound, (BoundUpdate, BoundDelete, BoundInsert))

    def referenced_tables(self) -> List[str]:
        """Names of tables the statement/workload touches."""
        if isinstance(self.bound, BoundSelect):
            return [bt.table.name for bt in self.bound.tables]
        if isinstance(self.bound, (BoundUpdate, BoundDelete, BoundInsert)):
            return [self.bound.table.name]
        return []


class Workload:
    """An ordered collection of weighted statements bound to a database."""

    def __init__(self, statements: Sequence[WorkloadStatement],
                 database: Database):
        if not statements:
            raise AdvisorError("workload must contain at least one statement")
        self.statements = list(statements)
        self.database = database
        binder = Binder(database)
        for statement in self.statements:
            if statement.weight <= 0:
                raise AdvisorError(
                    f"statement weight must be positive: {statement.sql!r}")
            statement.bound = binder.bind(
                parse(statement.sql, statement.params))

    @classmethod
    def from_sql(cls, sql_statements: Sequence[Union[str, Tuple[str, float]]],
                 database: Database) -> "Workload":
        """Build from plain SQL strings or (sql, weight) pairs."""
        statements = []
        for entry in sql_statements:
            if isinstance(entry, tuple):
                sql, weight = entry
                statements.append(WorkloadStatement(sql, weight))
            else:
                statements.append(WorkloadStatement(entry))
        return cls(statements, database)

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[WorkloadStatement]:
        return iter(self.statements)

    @property
    def selects(self) -> List[WorkloadStatement]:
        """The read-only statements of the workload."""
        return [s for s in self.statements if s.is_select]

    @property
    def updates(self) -> List[WorkloadStatement]:
        """The DML statements of the workload."""
        return [s for s in self.statements if s.is_update]

    @property
    def total_weight(self) -> float:
        """Sum of all statement weights."""
        return sum(s.weight for s in self.statements)

    def referenced_tables(self) -> List[str]:
        """Names of tables the statement/workload touches."""
        seen: List[str] = []
        for statement in self.statements:
            for name in statement.referenced_tables():
                if name not in seen:
                    seen.append(name)
        return seen
