"""The tuning advisor facade: this repository's DTA.

``TuningAdvisor.tune(workload, ...)`` runs the full pipeline of
Section 4 — candidate selection per query, index merging, greedy
workload-level enumeration under an optional storage budget — and returns
a :class:`Recommendation`. ``apply()`` materializes the recommendation
(builds the actual indexes), after which queries measurably speed up.

Tuning modes reproduce the paper's three compared designs (Section 5.1):

* ``hybrid``      — B+ trees and columnstores both considered (the new DTA)
* ``btree_only``  — B+ tree candidates only
* ``csi_only``    — a secondary columnstore on every referenced table
                    (the paper's columnstore-only baseline is not
                    advisor-driven; it simply builds a secondary CSI on
                    all tables)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.advisor.candidates import (
    CSI_MODE_ALL,
    CandidateGenerator,
    CandidateSet,
    missing_index_candidates,
    select_candidates_per_query,
)
from repro.advisor.enumeration import GreedyEnumerator, SearchResult
from repro.advisor.merging import merge_candidates
from repro.advisor.size_estimation import estimate_csi_size
from repro.advisor.workload import Workload
from repro.core.errors import AdvisorError
from repro.optimizer.catalog import Catalog
from repro.optimizer.cost_model import CostingOptions
from repro.optimizer.plans import KIND_BTREE, KIND_CSI, IndexDescriptor
from repro.optimizer.whatif import WhatIfSession
from repro.storage.database import Database

MODE_HYBRID = "hybrid"
MODE_BTREE_ONLY = "btree_only"
MODE_CSI_ONLY = "csi_only"


@dataclass
class Recommendation:
    """The advisor's output."""

    mode: str
    chosen: List[IndexDescriptor]
    base_cost: float
    estimated_cost: float
    per_statement_costs: List[float]
    storage_bytes: int
    elapsed_seconds: float
    n_candidates: int

    @property
    def improvement_factor(self) -> float:
        """base cost / final cost (higher is better)."""
        if self.estimated_cost <= 0:
            return float("inf")
        return self.base_cost / self.estimated_cost

    def ddl(self) -> List[str]:
        """CREATE INDEX-style statements for the chosen indexes."""
        return [descriptor.ddl() for descriptor in self.chosen]

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"mode={self.mode} candidates={self.n_candidates} "
            f"indexes={len(self.chosen)} "
            f"storage={self.storage_bytes / (1024 * 1024):.1f}MB",
            f"estimated cost: {self.base_cost:.2f} -> "
            f"{self.estimated_cost:.2f} "
            f"({self.improvement_factor:.1f}x)",
        ]
        lines.extend("  " + ddl for ddl in self.ddl())
        return "\n".join(lines)


class TuningAdvisor:
    """Database Engine Tuning Advisor, extended for hybrid designs."""

    def __init__(self, database: Database,
                 catalog: Optional[Catalog] = None,
                 options: Optional[CostingOptions] = None):
        self.database = database
        self.catalog = catalog or Catalog(database)
        self.options = options or CostingOptions(
            cost_model=database.cost_model)

    def tune(
        self,
        workload: Workload,
        mode: str = MODE_HYBRID,
        storage_budget_bytes: Optional[int] = None,
        csi_candidate_mode: str = CSI_MODE_ALL,
        consider_primary_csi: bool = True,
        consider_sorted_csi: bool = False,
        allow_multiple_columnstores: bool = False,
        size_estimation_method: str = "run_modelling",
        keep_existing_secondary: bool = False,
        seed_missing_indexes: bool = True,
    ) -> Recommendation:
        """Run the tuning pipeline and return a recommendation.

        ``consider_sorted_csi`` and ``allow_multiple_columnstores``
        enable the Section 4.5 extensions (sorted projections; several
        columnstores per table).

        ``seed_missing_indexes`` additionally pools B+ tree candidates
        derived from the database's missing-index telemetry
        (``dm_db_missing_index_details``), so indexes the running system
        observed a need for stay searchable even when the tuning
        workload alone would not have generated them. A freshly built
        database has no observations, so this is a no-op there.
        """
        started = time.perf_counter()
        session = WhatIfSession(self.database, self.catalog, self.options)

        if mode == MODE_CSI_ONLY:
            return self._csi_only(workload, session, started)
        if mode not in (MODE_HYBRID, MODE_BTREE_ONLY):
            raise AdvisorError(f"unknown tuning mode {mode!r}")

        generator = CandidateGenerator(
            self.catalog,
            consider_btrees=True,
            consider_columnstores=(mode == MODE_HYBRID),
            consider_primary_csi=(mode == MODE_HYBRID
                                  and consider_primary_csi),
            consider_sorted_csi=(mode == MODE_HYBRID
                                 and consider_sorted_csi),
            csi_mode=csi_candidate_mode,
            size_estimation_method=size_estimation_method,
        )
        generator.allow_multiple_csi = allow_multiple_columnstores
        pool, winners = select_candidates_per_query(
            workload, generator, session)
        merged = merge_candidates(pool, self.catalog)
        del merged  # merged candidates are already in the pool
        # The global search considers per-query winners plus merged
        # candidates; B+ tree losers that no query referenced are pruned,
        # but *all* columnstore candidates stay searchable — a per-query
        # tie between the primary and secondary CSI variant must not
        # eliminate the one with cheaper workload-level maintenance.
        winner_ids = {id(d) for ds in winners.values() for d in ds}
        searchable = [
            d for d in pool.all()
            if id(d) in winner_ids or d.name.startswith("hbm_")
            or d.kind == KIND_CSI
        ]
        if not searchable:
            searchable = pool.all()
        if seed_missing_indexes:
            searchable_ids = {id(d) for d in searchable}
            for descriptor in missing_index_candidates(
                    self.database, self.catalog):
                pooled = pool.add(descriptor)
                if id(pooled) not in searchable_ids:
                    searchable.append(pooled)
                    searchable_ids.add(id(pooled))

        enumerator = GreedyEnumerator(
            workload, session, self.catalog,
            storage_budget_bytes=storage_budget_bytes,
            keep_existing_secondary=keep_existing_secondary,
            allow_multiple_csi=allow_multiple_columnstores,
        )
        result = enumerator.search(searchable)
        return Recommendation(
            mode=mode, chosen=result.chosen, base_cost=result.base_cost,
            estimated_cost=result.final_cost,
            per_statement_costs=result.per_statement_costs,
            storage_bytes=result.storage_bytes,
            elapsed_seconds=time.perf_counter() - started,
            n_candidates=len(pool.all()),
        )

    def _csi_only(self, workload: Workload, session: WhatIfSession,
                  started: float) -> Recommendation:
        """Columnstore-only baseline: a secondary CSI on every referenced
        table that supports one (Section 5.1 design (b))."""
        chosen: List[IndexDescriptor] = []
        for table_name in workload.referenced_tables():
            table = self.database.table(table_name)
            columns = table.schema.columnstore_columns()
            if not columns:
                continue
            estimate = estimate_csi_size(table, columns)
            from repro.optimizer.whatif import hypothetical_columnstore
            chosen.append(hypothetical_columnstore(
                table_name, columns, estimate.column_sizes,
                is_primary=False, name=f"hc_{table_name}_only",
                column_encodings=estimate.column_encodings,
            ))
        enumerator = GreedyEnumerator(workload, session, self.catalog)
        base_config = enumerator.base_configuration()
        base_cost, _ = enumerator.total_cost(base_config)
        config = base_config
        for descriptor in chosen:
            applied = enumerator._apply_candidate(config, descriptor)
            if applied is not None:
                config = applied
        final_cost, per_statement = enumerator.total_cost(config)
        return Recommendation(
            mode=MODE_CSI_ONLY, chosen=chosen, base_cost=base_cost,
            estimated_cost=final_cost,
            per_statement_costs=per_statement,
            storage_bytes=sum(d.size_bytes for d in chosen),
            elapsed_seconds=time.perf_counter() - started,
            n_candidates=len(chosen),
        )

    # ------------------------------------------------------------- apply
    def apply(self, recommendation: Recommendation,
              drop_existing_secondary: bool = True) -> List[str]:
        """Materialize the recommendation: build the recommended indexes.

        Returns the list of created index names. Primary CSI
        recommendations convert the table's primary structure.
        """
        created: List[str] = []
        touched_tables = set()
        if drop_existing_secondary:
            for descriptor in recommendation.chosen:
                table = self.database.table(descriptor.table_name)
                if descriptor.table_name not in touched_tables:
                    table.drop_all_secondary_indexes()
                    touched_tables.add(descriptor.table_name)
        # Primaries first (a primary CSI forbids a secondary CSI).
        ordered = sorted(recommendation.chosen,
                         key=lambda d: not d.is_primary)
        for descriptor in ordered:
            table = self.database.table(descriptor.table_name)
            if descriptor.kind == KIND_CSI and descriptor.is_primary:
                index = table.set_primary_columnstore(name=descriptor.name)
            elif descriptor.kind == KIND_CSI:
                multiple = sum(
                    1 for d in recommendation.chosen
                    if d.kind == KIND_CSI and not d.is_primary
                    and d.table_name == descriptor.table_name) > 1
                index = table.create_secondary_columnstore(
                    descriptor.name, columns=descriptor.csi_columns,
                    sorted_on=descriptor.sorted_on,
                    allow_multiple=multiple)
            elif descriptor.kind == KIND_BTREE:
                index = table.create_secondary_btree(
                    descriptor.name, descriptor.key_columns,
                    included_columns=descriptor.included_columns)
            else:
                raise AdvisorError(
                    f"cannot apply descriptor kind {descriptor.kind!r}")
            created.append(index.name)
        self.catalog.invalidate()
        return created
