"""Candidate index selection: the per-query analysis stage of DTA.

For every SELECT in the workload, generate the indexes that *could* help
it (Section 4.3):

* **B+ tree candidates** from sargable predicates (equality columns
  first, then the range column, remaining referenced columns as INCLUDE),
  plus order-providing candidates keyed on GROUP BY / ORDER BY columns,
  plus join-column candidates for index-nested-loop plans.
* **Columnstore candidates** per referenced table — either all
  columnstore-supported columns (option (ii), the paper's choice) or only
  the referenced ones (option (i), kept for the ablation bench). Tables
  whose columns are all supported also yield a *primary* CSI candidate.

Candidate *selection* then asks the what-if optimizer which of the
generated candidates the best plan actually references, keeping only
those — DTA's "which subset of indexes are referenced by the optimizer"
step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.advisor.size_estimation import estimate_csi_size
from repro.advisor.workload import Workload, WorkloadStatement
from repro.core.errors import AdvisorError
from repro.engine.expressions import extract_column_ranges
from repro.optimizer.catalog import Catalog
from repro.optimizer.plans import KIND_CSI, IndexDescriptor
from repro.optimizer.whatif import (
    Configuration,
    WhatIfSession,
    hypothetical_btree,
    hypothetical_columnstore,
)
from repro.sql.binder import BoundSelect
from repro.storage.table import Table

#: Cap on INCLUDE width to avoid absurdly wide covering candidates.
MAX_INCLUDED_COLUMNS = 12

CSI_MODE_ALL = "all"
CSI_MODE_REFERENCED = "referenced"


@dataclass
class CandidateSet:
    """All candidates generated for a workload, keyed by name."""

    btrees: Dict[str, IndexDescriptor] = field(default_factory=dict)
    columnstores: Dict[str, IndexDescriptor] = field(default_factory=dict)

    def all(self) -> List[IndexDescriptor]:
        """Every pooled candidate (B+ trees then columnstores)."""
        return list(self.btrees.values()) + list(self.columnstores.values())

    def add(self, descriptor: IndexDescriptor) -> IndexDescriptor:
        """Add deduplicating on structural identity; returns the canonical
        descriptor. Names are uniquified: two structurally different
        candidates may be generated with the same derived name (same key
        columns, different INCLUDE lists)."""
        pool = (self.columnstores if descriptor.kind == KIND_CSI
                else self.btrees)
        signature = _signature(descriptor)
        for existing in pool.values():
            if _signature(existing) == signature:
                return existing
        if descriptor.name in pool:
            suffix = 2
            while f"{descriptor.name}_{suffix}" in pool:
                suffix += 1
            descriptor.name = f"{descriptor.name}_{suffix}"
        pool[descriptor.name] = descriptor
        return descriptor


def _signature(descriptor: IndexDescriptor) -> Tuple:
    if descriptor.kind == KIND_CSI:
        return (descriptor.table_name, "csi", descriptor.is_primary,
                descriptor.sorted_on,
                tuple(sorted(descriptor.csi_columns)))
    return (descriptor.table_name, "btree", tuple(descriptor.key_columns),
            tuple(sorted(descriptor.included_columns)))


class CandidateGenerator:
    """Generates hypothetical candidates for one workload."""

    def __init__(
        self,
        catalog: Catalog,
        consider_btrees: bool = True,
        consider_columnstores: bool = True,
        consider_primary_csi: bool = True,
        consider_sorted_csi: bool = False,
        csi_mode: str = CSI_MODE_ALL,
        size_estimation_method: str = "run_modelling",
        size_sampling_ratio: float = 0.1,
    ):
        if csi_mode not in (CSI_MODE_ALL, CSI_MODE_REFERENCED):
            raise AdvisorError(f"unknown csi candidate mode {csi_mode!r}")
        self.catalog = catalog
        self.consider_btrees = consider_btrees
        self.consider_columnstores = consider_columnstores
        self.consider_primary_csi = consider_primary_csi
        #: Section 4.5 extension: sorted (Vertica-projection-style) CSI
        #: candidates, one per range-predicate column; candidate
        #: selection "needs to be aware of sort requirements in a query".
        self.consider_sorted_csi = consider_sorted_csi
        #: Section 4.5 extension: allow several columnstores per table
        #: (Vertica-style projections); lifts the engine's one-CSI rule.
        self.allow_multiple_csi = False
        self.csi_mode = csi_mode
        self.size_estimation_method = size_estimation_method
        self.size_sampling_ratio = size_sampling_ratio
        self._csi_size_cache: Dict[Tuple[str, Tuple[str, ...]], object] = {}

    # ----------------------------------------------------------- per query
    def candidates_for_query(self, bound: BoundSelect,
                             pool: CandidateSet) -> List[IndexDescriptor]:
        """Generate (and pool) the candidates relevant to one query."""
        out: List[IndexDescriptor] = []
        for bound_table in bound.tables:
            table = bound_table.table
            alias = bound_table.alias
            if self.consider_btrees:
                for descriptor in self._btree_candidates(bound, alias, table):
                    out.append(pool.add(descriptor))
            if self.consider_columnstores:
                for descriptor in self._csi_candidates(bound, alias, table):
                    out.append(pool.add(descriptor))
        return out

    # -------------------------------------------------------------- btrees
    def _btree_candidates(self, bound: BoundSelect, alias: str,
                          table: Table) -> List[IndexDescriptor]:
        stats = self.catalog.stats(table.name)
        column_bytes = self.catalog.column_bytes(table.name)
        referenced = bound.referenced_columns(alias)
        prefix = alias + "."
        ranges = {
            name[len(prefix):]: r
            for name, r in extract_column_ranges(bound.where).items()
            if name.startswith(prefix)
        }
        equality = [c for c, r in ranges.items() if r.is_point]
        inequality = [c for c, r in ranges.items() if not r.is_point]
        join_cols = []
        for edge in bound.join_edges:
            if edge.left_alias == alias:
                join_cols.append(edge.left_column)
            if edge.right_alias == alias:
                join_cols.append(edge.right_column)
        group_cols = [
            q.split(".", 1)[1] for q in bound.group_by
            if q.startswith(prefix)
        ]
        order_cols = [
            q.split(".", 1)[1] for q, desc in bound.order_by
            if q.startswith(prefix) and not desc
        ]

        candidates: List[IndexDescriptor] = []

        def make(keys: List[str], label: str) -> None:
            """Emit one covering B+ tree candidate for the given keys."""
            if not keys:
                return
            include = [c for c in referenced if c not in keys]
            include = include[:MAX_INCLUDED_COLUMNS]
            candidates.append(hypothetical_btree(
                table.name, keys, include, n_rows=stats.row_count,
                column_bytes=column_bytes,
                name=f"hb_{table.name}_{label}_{'_'.join(keys)[:40]}",
            ))

        # Seek candidate: equality columns first, then one range column.
        seek_keys = list(dict.fromkeys(equality + inequality[:1]))
        make(seek_keys, "seek")
        # Join candidates: one per join column (for INL inner sides).
        for column in dict.fromkeys(join_cols):
            make([column], "join")
            if seek_keys and column not in seek_keys:
                make([column] + seek_keys, "joinseek")
        # Order-providing candidates.
        make(list(dict.fromkeys(group_cols)), "group")
        make(list(dict.fromkeys(order_cols)), "order")
        return candidates

    # ---------------------------------------------------------------- csis
    def _csi_candidates(self, bound: BoundSelect, alias: str,
                        table: Table) -> List[IndexDescriptor]:
        supported = table.schema.columnstore_columns()
        if not supported:
            return []
        if self.csi_mode == CSI_MODE_REFERENCED:
            columns = [c for c in bound.referenced_columns(alias)
                       if c in supported]
            if not columns:
                return []
        else:
            columns = supported
        column_sizes = self._csi_sizes(table, columns)
        candidates = [hypothetical_columnstore(
            table.name, columns, column_sizes,
            is_primary=False, name=f"hc_{table.name}_sec",
            column_encodings=self._csi_encodings(table, columns),
        )]
        if self.consider_primary_csi and \
                not table.schema.has_unsupported_columns():
            all_sizes = self._csi_sizes(table, supported)
            candidates.append(hypothetical_columnstore(
                table.name, supported, all_sizes,
                is_primary=True, name=f"hc_{table.name}_pri",
                column_encodings=self._csi_encodings(table, supported),
            ))
        if self.consider_sorted_csi:
            candidates.extend(
                self._sorted_csi_candidates(bound, alias, table, columns,
                                            column_sizes))
        return candidates

    def _sorted_csi_candidates(self, bound: BoundSelect, alias: str,
                               table: Table, columns, column_sizes
                               ) -> List[IndexDescriptor]:
        """Sorted-CSI candidates (Section 4.5): one per column carrying a
        non-point sargable range in this query, enabling aggressive
        segment elimination on that column (Figure 2's sorted build)."""
        prefix = alias + "."
        ranges = {
            name[len(prefix):]: r
            for name, r in extract_column_ranges(bound.where).items()
            if name.startswith(prefix)
        }
        out: List[IndexDescriptor] = []
        for column, column_range in ranges.items():
            if column_range.is_point or column not in columns:
                continue
            out.append(hypothetical_columnstore(
                table.name, columns, column_sizes, is_primary=False,
                sorted_on=column,
                name=f"hc_{table.name}_sorted_{column}",
                column_encodings=self._csi_encodings(table, columns),
            ))
        return out

    def _csi_estimate(self, table: Table, columns: Sequence[str]):
        key = (table.name, tuple(columns))
        if key not in self._csi_size_cache:
            self._csi_size_cache[key] = estimate_csi_size(
                table, columns, method=self.size_estimation_method,
                sampling_ratio=self.size_sampling_ratio)
        return self._csi_size_cache[key]

    def _csi_sizes(self, table: Table,
                   columns: Sequence[str]) -> Dict[str, int]:
        return self._csi_estimate(table, columns).column_sizes

    def _csi_encodings(self, table: Table,
                       columns: Sequence[str]) -> Dict[str, str]:
        return self._csi_estimate(table, columns).column_encodings


def missing_index_candidates(database, catalog: Catalog
                             ) -> List[IndexDescriptor]:
    """B+ tree candidates seeded from the missing-index DMV.

    Each accumulated :class:`~repro.storage.telemetry.MissingIndexDetails`
    observation (surfaced as ``dm_db_missing_index_details``) becomes one
    hypothetical covering B+ tree: equality columns first, then the
    inequality columns, with the observed output columns as INCLUDE —
    the same shape SQL Server's missing-index DMVs suggest. Observations
    for dropped tables or stale columns are skipped.
    """
    out: List[IndexDescriptor] = []
    for detail in database.telemetry.missing_indexes():
        if not database.has_table(detail.table_name):
            continue
        keys = [c for c in detail.key_columns]
        if not keys:
            continue
        table = database.table(detail.table_name)
        known = {column.name for column in table.schema.columns}
        if any(key not in known for key in keys):
            continue
        include = [c for c in detail.included_columns
                   if c in known and c not in keys]
        include = include[:MAX_INCLUDED_COLUMNS]
        stats = catalog.stats(detail.table_name)
        column_bytes = catalog.column_bytes(detail.table_name)
        out.append(hypothetical_btree(
            detail.table_name, keys, include, n_rows=stats.row_count,
            column_bytes=column_bytes,
            name=f"mi_{detail.table_name}_{'_'.join(keys)[:40]}",
        ))
    return out


def select_candidates_per_query(
    workload: Workload,
    generator: CandidateGenerator,
    session: WhatIfSession,
) -> Tuple[CandidateSet, Dict[int, List[IndexDescriptor]]]:
    """DTA's candidate-selection stage.

    For each SELECT: generate candidates, cost the query with *all* of
    them visible, and keep the hypothetical indexes the optimizer's best
    plan actually references. Returns the pooled candidate set and a map
    from statement index to its winning candidates.
    """
    pool = CandidateSet()
    winners: Dict[int, List[IndexDescriptor]] = {}
    for i, statement in enumerate(workload.statements):
        if not statement.is_select:
            continue
        bound = statement.bound
        generated = generator.candidates_for_query(bound, pool)
        if not generated:
            winners[i] = []
            continue
        config = session.configuration_with(_dedupe(generated))
        config.allow_multiple_csi = generator.allow_multiple_csi
        _resolve_csi_conflicts(config,
                               allow_multiple=generator.allow_multiple_csi)
        planned = session.cost_query(bound, config)
        winners[i] = [
            descriptor for descriptor in planned.referenced_indexes()
            if descriptor.hypothetical
        ]
    return pool, winners


def _dedupe(descriptors: Sequence[IndexDescriptor]) -> List[IndexDescriptor]:
    seen: Set[int] = set()
    out = []
    for descriptor in descriptors:
        if id(descriptor) not in seen:
            seen.add(id(descriptor))
            out.append(descriptor)
    return out


def _resolve_csi_conflicts(config: Configuration,
                           allow_multiple: bool = False) -> None:
    """Honour the engine rules inside a per-query costing configuration.

    A hypothetical primary CSI replaces the table's current primary
    structure (and, under the one-CSI rule, displaces every other
    columnstore). Without a primary candidate, at most one secondary CSI
    survives under the one-CSI rule — preferring a sorted variant (the
    most specialised) over the plain one. With ``allow_multiple``
    (Section 4.5) all secondary CSIs stay visible.
    """
    for table_name, descriptors in config.indexes.items():
        hypo_primary = [d for d in descriptors
                        if d.hypothetical and d.is_primary]
        if hypo_primary:
            keep = hypo_primary[-1]
            config.indexes[table_name] = [
                d for d in descriptors
                if d is keep or (
                    not d.is_primary
                    and (d.kind != KIND_CSI or allow_multiple))
            ]
            continue
        if allow_multiple:
            continue
        csis = [d for d in descriptors if d.kind == KIND_CSI]
        if len(csis) <= 1:
            continue
        sorted_variants = [d for d in csis if d.sorted_on is not None]
        keep = sorted_variants[0] if sorted_variants else csis[0]
        config.indexes[table_name] = [
            d for d in descriptors if d.kind != KIND_CSI or d is keep
        ]
