"""Workload-level greedy enumeration: DTA's global search (Section 4.1).

Given the candidate pool (per-query winners plus merged candidates), find
the configuration minimizing total optimizer-estimated workload cost,
subject to an optional storage budget.

The search is greedy: starting from the base configuration (primary
structures only), repeatedly add the candidate with the largest total
cost reduction that still fits the budget, until no candidate improves
the objective. Update statements contribute index-maintenance costs so a
write-heavy workload naturally rejects expensive-to-maintain candidates
(this is how the CH benchmark ends up hybrid rather than CSI-everywhere).

Two engine restrictions shape the space (Section 4.3): at most one
columnstore per table, and a primary CSI candidate *replaces* the
table's primary structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.advisor.workload import Workload, WorkloadStatement
from repro.core.errors import AdvisorError
from repro.engine.expressions import extract_column_ranges
from repro.optimizer.catalog import Catalog
from repro.optimizer.plans import KIND_BTREE, KIND_CSI, KIND_HEAP, IndexDescriptor
from repro.optimizer.whatif import Configuration, WhatIfSession
from repro.sql.binder import BoundDelete, BoundInsert, BoundSelect, BoundUpdate

#: Safety cap on greedy iterations.
MAX_CHOSEN_INDEXES = 40


@dataclass
class SearchResult:
    """Outcome of the greedy enumeration."""

    chosen: List[IndexDescriptor]
    configuration: Configuration
    base_cost: float
    final_cost: float
    per_statement_costs: List[float]
    storage_bytes: int

    @property
    def improvement_factor(self) -> float:
        """base cost / final cost (higher is better)."""
        if self.final_cost <= 0:
            return float("inf")
        return self.base_cost / self.final_cost


class GreedyEnumerator:
    """Greedy workload-level configuration search (Section 4.1)."""
    def __init__(self, workload: Workload, session: WhatIfSession,
                 catalog: Catalog,
                 storage_budget_bytes: Optional[int] = None,
                 keep_existing_secondary: bool = False,
                 allow_multiple_csi: bool = False):
        self.workload = workload
        self.session = session
        self.catalog = catalog
        self.storage_budget_bytes = storage_budget_bytes
        self.keep_existing_secondary = keep_existing_secondary
        #: Section 4.5 extension: lift the one-CSI-per-table rule.
        self.allow_multiple_csi = allow_multiple_csi
        self._query_cost_cache: Dict[Tuple[int, Tuple[str, ...]], float] = {}

    # ------------------------------------------------------------ objective
    def base_configuration(self) -> Configuration:
        """Starting configuration (primary structures only)."""
        config = self.session.current_configuration()
        config.allow_multiple_csi = self.allow_multiple_csi
        if not self.keep_existing_secondary:
            for table_name in config.indexes:
                config.indexes[table_name] = [
                    d for d in config.indexes[table_name] if d.is_primary
                ]
        return config

    def _config_signature(self, config: Configuration,
                          tables: Sequence[str]) -> Tuple[str, ...]:
        names: List[str] = []
        for table_name in sorted(set(tables)):
            for descriptor in config.indexes.get(table_name, []):
                names.append(f"{table_name}:{descriptor.name}")
        return tuple(names)

    def statement_cost(self, index: int, statement: WorkloadStatement,
                       config: Configuration) -> float:
        """Optimizer-estimated cost of one statement under a config."""
        tables = statement.referenced_tables()
        key = (index, self._config_signature(config, tables))
        if key in self._query_cost_cache:
            return self._query_cost_cache[key]
        if statement.is_select:
            planned = self.session.cost_query(statement.bound, config)
            cost = planned.est_cost
        else:
            cost = self._update_cost(statement, config)
        self._query_cost_cache[key] = cost
        return cost

    def total_cost(self, config: Configuration) -> Tuple[float, List[float]]:
        """Weighted workload cost plus per-statement breakdown."""
        per_statement = []
        total = 0.0
        for i, statement in enumerate(self.workload.statements):
            cost = self.statement_cost(i, statement, config)
            per_statement.append(cost)
            total += cost * statement.weight
        return total, per_statement

    # ------------------------------------------------------- update costs
    def _update_cost(self, statement: WorkloadStatement,
                     config: Configuration) -> float:
        """Locate cost plus per-index maintenance for a DML statement."""
        bound = statement.bound
        cm = self.session.options.cost_model
        table = bound.table
        stats = self.catalog.stats(table.name)
        rows_affected = self._estimate_rows_affected(bound, stats)
        descriptors = config.indexes.get(
            table.name, self.catalog.indexes_for(table.name))

        cost = cm.statement_overhead_ms
        # Locate cost: cheap with any sargable B+ tree, else a scan.
        sargable = self._has_sargable_btree(bound, descriptors)
        if sargable:
            cost += cm.seek_cpu_ms + rows_affected * cm.row_cpu_ms_per_row
        else:
            cost += stats.row_count * cm.batch_cpu_ms_per_row

        if isinstance(bound, BoundInsert):
            rows_affected = max(rows_affected, len(bound.rows))

        for descriptor in descriptors:
            cost += self._maintenance_cost(descriptor, rows_affected, stats,
                                           cm)
        return cost

    def _maintenance_cost(self, descriptor: IndexDescriptor,
                          rows_affected: float, stats, cm) -> float:
        per_row_log = cm.log_write_ms_per_row
        if descriptor.kind == KIND_HEAP:
            return rows_affected * per_row_log
        if descriptor.kind == KIND_BTREE:
            return rows_affected * (cm.btree_update_cpu_ms_per_row
                                    + per_row_log)
        # Columnstore maintenance (Section 2 / Figure 5): delete handling,
        # delta-store insert, and amortized tuple-mover recompression.
        base = rows_affected * (2 * cm.btree_update_cpu_ms_per_row
                                + per_row_log
                                + cm.csi_compress_cpu_ms_per_row)
        if descriptor.is_primary:
            # Locator scans: each affected row group is scanned once per
            # statement; with uniform spread, min(#groups, rows) groups.
            rowgroup = 32768.0
            n_groups = max(1.0, stats.row_count / rowgroup)
            affected_groups = min(n_groups, rows_affected)
            base += affected_groups * rowgroup * cm.csi_locate_cpu_ms_per_row
        return base

    @staticmethod
    def _estimate_rows_affected(bound, stats) -> float:
        if isinstance(bound, BoundInsert):
            return float(len(bound.rows))
        ranges = extract_column_ranges(bound.where)
        selectivity = stats.selectivity(ranges) if ranges else (
            1.0 if bound.where is None else 0.1)
        rows = max(1.0, stats.row_count * selectivity)
        if bound.top is not None:
            rows = min(rows, float(bound.top))
        return rows

    @staticmethod
    def _has_sargable_btree(bound, descriptors) -> bool:
        ranges = extract_column_ranges(bound.where)
        bare = {name.split(".", 1)[-1] for name in ranges}
        for descriptor in descriptors:
            if descriptor.kind == KIND_BTREE and descriptor.key_columns \
                    and descriptor.key_columns[0] in bare:
                return True
        return False

    # ------------------------------------------------------------- search
    def search(self, candidates: Sequence[IndexDescriptor]) -> SearchResult:
        """Run the greedy enumeration over the candidate pool."""
        config = self.base_configuration()
        base_total, _ = self.total_cost(config)
        current_total = base_total
        chosen: List[IndexDescriptor] = []
        available = list(candidates)
        base_storage = self._storage_of(config)

        while available and len(chosen) < MAX_CHOSEN_INDEXES:
            best: Optional[Tuple[float, IndexDescriptor, Configuration]] = None
            for candidate in available:
                trial = self._apply_candidate(config, candidate)
                if trial is None:
                    continue
                storage = self._storage_of(trial)
                if self.storage_budget_bytes is not None and \
                        storage - base_storage > self.storage_budget_bytes:
                    continue
                trial_total = self._total_with_delta(
                    config, trial, candidate, current_total)
                if trial_total < current_total - 1e-9:
                    gain = current_total - trial_total
                    if best is None or gain > best[0]:
                        best = (gain, candidate, trial)
            if best is None:
                break
            _, winner, config = best
            current_total -= best[0]
            chosen.append(winner)
            available = [c for c in available if c is not winner]

        final_total, per_statement = self.total_cost(config)
        return SearchResult(
            chosen=chosen, configuration=config, base_cost=base_total,
            final_cost=final_total, per_statement_costs=per_statement,
            storage_bytes=self._storage_of(config) - base_storage,
        )

    def _total_with_delta(self, old_config: Configuration,
                          new_config: Configuration,
                          candidate: IndexDescriptor,
                          current_total: float) -> float:
        """Recompute only statements touching the candidate's table."""
        table_name = candidate.table_name
        total = current_total
        for i, statement in enumerate(self.workload.statements):
            if table_name not in statement.referenced_tables():
                continue
            old_cost = self.statement_cost(i, statement, old_config)
            new_cost = self.statement_cost(i, statement, new_config)
            total += (new_cost - old_cost) * statement.weight
        return total

    def _apply_candidate(self, config: Configuration,
                         candidate: IndexDescriptor
                         ) -> Optional[Configuration]:
        """Return a new configuration with the candidate added, or None
        when the addition is invalid/redundant."""
        table_name = candidate.table_name
        descriptors = list(config.indexes.get(table_name, []))
        if any(d.name == candidate.name for d in descriptors):
            return None
        if candidate.kind == KIND_CSI:
            if candidate.is_primary:
                # Replace the primary structure; drop any other CSI.
                descriptors = [d for d in descriptors
                               if not d.is_primary and d.kind != KIND_CSI]
                descriptors.append(candidate)
            else:
                if any(d.kind == KIND_CSI for d in descriptors) \
                        and not self.allow_multiple_csi:
                    return None
                if any(d.name == candidate.name for d in descriptors):
                    return None
                descriptors.append(candidate)
        else:
            if any(_same_btree(d, candidate) for d in descriptors):
                return None
            descriptors.append(candidate)
        new_indexes = dict(config.indexes)
        new_indexes[table_name] = descriptors
        new_config = Configuration(indexes=new_indexes,
                                   allow_multiple_csi=self.allow_multiple_csi)
        try:
            new_config.validate()
        except Exception:
            return None
        return new_config

    def _storage_of(self, config: Configuration) -> int:
        total = 0
        for descriptors in config.indexes.values():
            for descriptor in descriptors:
                total += descriptor.size_bytes
        return total


def _same_btree(a: IndexDescriptor, b: IndexDescriptor) -> bool:
    return (a.kind == KIND_BTREE and b.kind == KIND_BTREE
            and a.key_columns == b.key_columns
            and sorted(a.included_columns) == sorted(b.included_columns))
