"""Index merging: DTA's first global-analysis step (Section 4.1/4.3).

Per-query candidates are often near-duplicates (same keys, slightly
different INCLUDE lists). Merging produces consolidated candidates that
serve several queries with less storage:

* identical key lists -> union the INCLUDE lists;
* one key list a prefix of another -> keep the longer keys, union the
  INCLUDEs.

Columnstores never merge with B+ trees, and because the advisor considers
a single all-columns CSI per table (option (ii)), two CSI candidates on
the same table merge trivially by column union (Section 4.3: "if at least
one of the indexes is a columnstore, then the candidates are not merged"
— with B+ trees).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.advisor.candidates import CandidateSet
from repro.optimizer.catalog import Catalog
from repro.optimizer.plans import KIND_CSI, IndexDescriptor
from repro.optimizer.whatif import hypothetical_btree, hypothetical_columnstore


def merge_btree_pair(a: IndexDescriptor, b: IndexDescriptor,
                     catalog: Catalog) -> IndexDescriptor:
    """Merge two B+ tree candidates on the same table (caller guarantees
    mergeability)."""
    if len(a.key_columns) >= len(b.key_columns):
        longer, shorter = a, b
    else:
        longer, shorter = b, a
    keys = list(longer.key_columns)
    include = [c for c in dict.fromkeys(
        list(longer.included_columns) + list(shorter.included_columns)
        + list(shorter.key_columns))
        if c not in keys]
    stats = catalog.stats(a.table_name)
    return hypothetical_btree(
        a.table_name, keys, include, n_rows=stats.row_count,
        column_bytes=catalog.column_bytes(a.table_name),
        name=f"hbm_{a.table_name}_{'_'.join(keys)[:40]}",
    )


def can_merge_btrees(a: IndexDescriptor, b: IndexDescriptor) -> bool:
    """Whether two B+ tree candidates are mergeable (same table, prefix keys)."""
    if a.table_name != b.table_name:
        return False
    if a.kind == KIND_CSI or b.kind == KIND_CSI:
        return False  # columnstore and B+ tree cannot be merged
    shorter, longer = sorted((a.key_columns, b.key_columns), key=len)
    return longer[:len(shorter)] == shorter


def merge_candidates(pool: CandidateSet,
                     catalog: Catalog) -> List[IndexDescriptor]:
    """Produce merged candidates from every mergeable B+ tree pair.

    Returns only the *new* merged descriptors; the originals stay in the
    pool (the global search chooses among originals and merges).
    """
    btrees = list(pool.btrees.values())
    merged: List[IndexDescriptor] = []
    seen_signatures = set()
    for i in range(len(btrees)):
        for j in range(i + 1, len(btrees)):
            a, b = btrees[i], btrees[j]
            if not can_merge_btrees(a, b):
                continue
            candidate = merge_btree_pair(a, b, catalog)
            signature = (candidate.table_name,
                         tuple(candidate.key_columns),
                         tuple(sorted(candidate.included_columns)))
            if signature in seen_signatures:
                continue
            if any(signature == (d.table_name, tuple(d.key_columns),
                                 tuple(sorted(d.included_columns)))
                   for d in btrees):
                continue
            seen_signatures.add(signature)
            merged.append(pool.add(candidate))
    return merged
