"""Columnstore size estimation from samples (Section 4.4).

To cost a hypothetical columnstore, DTA must estimate the compressed
per-column sizes *without building the index*. Two estimators from the
paper are implemented:

* **Black-box**: build the real columnstore compression on a sample and
  scale each column's compressed size by the inverse of the sampling
  ratio. Simple and robust to compression-algorithm changes, but
  overestimates low-cardinality columns badly (the ``n_nationkey``
  example: 25 distinct values can never produce more than 25 runs per
  row group no matter how many rows there are).

* **Run modelling with distinct-value estimation (GEE)**: mimic the
  engine's greedy sort-column selection using estimated distinct counts,
  bound each column's run count by the estimated number of distinct
  combinations of the sort-prefix columns, and price RLE/dictionary/
  bit-packing from those estimates. Cheaper (no sort of the sample, no
  index build) and usually more accurate.

Samples come from **block-level sampling** with the bias correction the
paper cites (Chaudhuri et al. 1998): sampling whole blocks of rows that
are sorted by a clustered key correlates values within a block, so the
estimator consumes per-block duplicate statistics rather than treating
the sample as uniform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import AdvisorError
from repro.core.types import TypeKind
from repro.engine.batch import _column_array
from repro.storage.compression import compress_rowgroup, count_runs
from repro.storage.table import Table

_RUN_HEADER_BYTES = 4
DEFAULT_BLOCK_ROWS = 64


@dataclass
class SizeEstimate:
    """Result of one estimation: per-column and total bytes."""

    column_sizes: Dict[str, int]
    method: str
    sample_rows: int
    sampling_ratio: float
    #: Compression scheme each size estimate assumed ("rle" | "dict" |
    #: "bitpack" | "raw"); feeds Kimura-style compression-aware what-if
    #: costing via ``hypothetical_columnstore(column_encodings=...)``.
    column_encodings: Dict[str, str] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """Sum of the per-column size estimates."""
        return sum(self.column_sizes.values())


def block_sample(table: Table, sampling_ratio: float,
                 block_rows: int = DEFAULT_BLOCK_ROWS,
                 seed: int = 7) -> List[Tuple[object, ...]]:
    """Sample whole blocks of ``block_rows`` consecutive rows.

    Emulates page-level sampling of the base table: rows that are
    physically adjacent (and therefore correlated when the table is
    clustered) arrive together.
    """
    if not 0 < sampling_ratio <= 1:
        raise AdvisorError("sampling_ratio must be in (0, 1]")
    rows = [row for _, row in table.iter_rows()]
    n = len(rows)
    if n == 0:
        return []
    if sampling_ratio >= 1.0:
        return rows
    n_blocks = max(1, n // block_rows)
    want_blocks = max(1, int(round(n_blocks * sampling_ratio)))
    rng = np.random.default_rng(seed)
    chosen = rng.choice(n_blocks, size=min(want_blocks, n_blocks),
                        replace=False)
    sample: List[Tuple[object, ...]] = []
    for block in sorted(chosen.tolist()):
        start = block * block_rows
        sample.extend(rows[start:start + block_rows])
    return sample


def gee_distinct_estimate(values: Sequence[object], total_rows: int,
                          scaling: str = "sqrt") -> int:
    """GEE distinct-value estimator from a sample.

    ``f1`` (values seen exactly once in the sample) are scaled up —
    by ``sqrt(N/n)`` for the classical GEE bound, or linearly by ``N/n``
    for the simplified variant the paper's prose describes; values seen
    more than once are counted once.
    """
    n = len(values)
    if n == 0:
        return 0
    counts: Dict[object, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    f1 = sum(1 for c in counts.values() if c == 1)
    rest = len(counts) - f1
    if n >= total_rows:
        return len(counts)
    if scaling == "sqrt":
        factor = math.sqrt(total_rows / n)
    elif scaling == "linear":
        factor = total_rows / n
    else:
        raise AdvisorError(f"unknown GEE scaling {scaling!r}")
    return min(total_rows, int(round(f1 * factor + rest)))


def _bits_for(n_distinct: int) -> int:
    if n_distinct <= 1:
        return 1
    return max(1, math.ceil(math.log2(n_distinct)))


def _dictionary_bytes(values: Sequence[object], est_distinct: int) -> int:
    """Estimated dictionary size for a string column."""
    non_null = [v for v in values if v is not None]
    if not non_null:
        return 0
    avg_len = sum(len(str(v)) for v in non_null) / len(non_null)
    return int(est_distinct * (avg_len + 4))


def estimate_blackbox(table: Table, columns: Sequence[str],
                      sampling_ratio: float = 0.1,
                      seed: int = 7) -> SizeEstimate:
    """Black-box estimator: compress the sample, scale linearly.

    Runs the engine's actual row-group compression (greedy sort + RLE/
    dictionary/bit-pack) on the sampled rows.
    """
    sample = block_sample(table, sampling_ratio, seed=seed)
    if not sample:
        return SizeEstimate({c: 0 for c in columns}, "blackbox", 0,
                            sampling_ratio)
    ordinals = table.schema.ordinals(columns)
    column_data = {
        column: _column_array([row[ordinal] for row in sample])
        for column, ordinal in zip(columns, ordinals)
    }
    rids = np.arange(len(sample))
    group = compress_rowgroup(table.schema, column_data, rids)
    actual_ratio = len(sample) / max(1, table.row_count)
    scale = 1.0 / actual_ratio
    sizes = {
        column: int(group.column(column).size_bytes * scale)
        for column in columns
    }
    encodings = {
        column: group.column(column).encoding for column in columns
    }
    return SizeEstimate(sizes, "blackbox", len(sample), actual_ratio,
                        column_encodings=encodings)


def estimate_run_modelling(table: Table, columns: Sequence[str],
                           sampling_ratio: float = 0.1,
                           gee_scaling: str = "sqrt",
                           seed: int = 7) -> SizeEstimate:
    """Run-modelling estimator using GEE distinct counts (Section 4.4).

    1. Estimate each column's distinct count with GEE.
    2. Greedily order columns by fewest estimated runs — i.e. fewest
       estimated distinct values, mirroring the engine's sort selection.
    3. The number of runs of the k-th sort column is bounded by the
       estimated number of distinct *combinations* of sort columns
       1..k (Figure 8's ``<B, A>`` example); estimate those combination
       counts with GEE over tuple values from the sample.
    4. Price each column as min(RLE from runs, bit-packed codes, raw),
       plus dictionary overhead for string columns.
    """
    sample = block_sample(table, sampling_ratio, seed=seed)
    total_rows = table.row_count
    if not sample or total_rows == 0:
        return SizeEstimate({c: 0 for c in columns}, "run_modelling", 0,
                            sampling_ratio)
    ordinals = table.schema.ordinals(columns)
    by_column = {
        column: [row[ordinal] for row in sample]
        for column, ordinal in zip(columns, ordinals)
    }
    distinct = {
        column: max(1, gee_distinct_estimate(values, total_rows, gee_scaling))
        for column, values in by_column.items()
    }
    # Greedy sort order: fewest estimated distinct values first.
    order = sorted(columns, key=lambda c: (distinct[c], c))

    sizes: Dict[str, int] = {}
    encodings: Dict[str, str] = {}
    prefix_values: Optional[List[Tuple[object, ...]]] = None
    for column in order:
        values = by_column[column]
        if prefix_values is None:
            prefix_values = [(v,) for v in values]
        else:
            prefix_values = [
                prefix + (v,) for prefix, v in zip(prefix_values, values)
            ]
        est_runs = gee_distinct_estimate(prefix_values, total_rows,
                                         gee_scaling)
        est_runs = max(1, min(est_runs, total_rows))
        col_type = table.schema.column(column).col_type
        is_string = col_type.kind is TypeKind.VARCHAR or (
            values and isinstance(next(
                (v for v in values if v is not None), None), str))
        dict_overhead = (_dictionary_bytes(values, distinct[column])
                         if is_string else 0)
        code_bytes = (_bits_for(distinct[column]) / 8.0 if is_string
                      else col_type.byte_width)
        rle_size = est_runs * (code_bytes + _RUN_HEADER_BYTES)
        pack_size = total_rows * _bits_for(distinct[column]) / 8.0
        raw_size = total_rows * code_bytes
        best = min(rle_size, pack_size, raw_size)
        sizes[column] = int(best + dict_overhead)
        # Record the scheme the winning price assumed, so the estimate
        # can feed compression-aware (Kimura) what-if costing.
        if best == rle_size:
            encodings[column] = "rle"
        elif is_string:
            encodings[column] = "dict"
        elif best == pack_size:
            encodings[column] = "bitpack"
        else:
            encodings[column] = "raw"
    return SizeEstimate(sizes, "run_modelling", len(sample),
                        len(sample) / total_rows,
                        column_encodings=encodings)


def estimate_csi_size(table: Table, columns: Sequence[str],
                      method: str = "run_modelling",
                      sampling_ratio: float = 0.1,
                      seed: int = 7) -> SizeEstimate:
    """Dispatch to the chosen estimator."""
    if method == "blackbox":
        return estimate_blackbox(table, columns, sampling_ratio, seed)
    if method == "run_modelling":
        return estimate_run_modelling(
            table, columns, sampling_ratio, seed=seed)
    raise AdvisorError(f"unknown size estimation method {method!r}")


def actual_csi_column_sizes(table: Table,
                            columns: Sequence[str]) -> Dict[str, int]:
    """Ground truth: build a throwaway columnstore and read its sizes
    (used by tests and the estimation-accuracy bench)."""
    from repro.storage.columnstore import ColumnstoreIndex
    index = ColumnstoreIndex.build(
        "__ground_truth__", table.schema, table.rows_with_rids(),
        columns=columns, is_primary=False)
    return index.column_sizes()
