"""Per-query metrics and the execution context that accumulates them.

The paper reports elapsed (execution) time, CPU time, data read, and query
memory for each experiment. :class:`QueryMetrics` carries those observables;
:class:`ExecutionContext` is threaded through every storage and operator
call and converts physical events (rows processed, pages read, hash
entries built) into charges using the :class:`repro.engine.costs.CostModel`.

Elapsed vs CPU time: serial work adds equally to both. Parallel work adds
its full cost to CPU (times a coordination overhead) but only
``cost / dop`` to elapsed time, plus a fixed parallel startup charge —
reproducing the dip-in-elapsed / jump-in-CPU at the serial→parallel
transition visible in Figure 1.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import ExecutionError
from repro.engine.costs import DEFAULT_COST_MODEL, MB, CostModel


@dataclass
class QueryMetrics:
    """Observable outcomes of one statement execution."""

    elapsed_ms: float = 0.0
    cpu_ms: float = 0.0
    data_read_mb: float = 0.0
    data_written_mb: float = 0.0
    pages_read: int = 0
    rows_returned: int = 0
    memory_peak_bytes: int = 0
    spilled_bytes: int = 0
    lock_wait_ms: float = 0.0
    #: Portion of ``elapsed_ms`` that is modeled I/O wait (cold reads,
    #: writes, spills). The serving layer can replay this as real wall
    #: time so multi-session benchmarks overlap I/O like a real engine.
    io_wait_ms: float = 0.0
    dop: int = 1
    #: Leaf data-access counts by index kind, for Figure 10
    #: ("percentage of leaf nodes accessing columnstore vs B+ tree").
    leaf_accesses: Dict[str, int] = field(default_factory=dict)
    #: Row groups eliminated by segment min/max metadata (Figure 2).
    segments_skipped: int = 0
    segments_read: int = 0
    #: Decoded-segment cache traffic this statement caused (hits skip the
    #: decode CPU and segment read charges; zero when the cache is off).
    segment_cache_hits: int = 0
    segment_cache_misses: int = 0
    segment_cache_evictions: int = 0
    #: Dictionary-coded (late materialization) execution: columns a
    #: columnstore scan served as codes instead of decoded values, and
    #: operator evaluations that ran on codes vs ones that had to
    #: materialize an encoded column (see :mod:`repro.engine.encoded`).
    columns_late_materialized: int = 0
    code_path_hits: int = 0
    code_path_fallbacks: int = 0
    #: Robustness counters: storage faults injected by an armed
    #: :class:`~repro.storage.faults.FaultInjector` during this statement,
    #: and multi-index DML operations that were rolled back via
    #: compensating index operations (both zero in normal operation).
    faults_injected: int = 0
    rollbacks: int = 0

    def record_leaf_access(self, index_kind: str) -> None:
        """Count one data access through the given index kind."""
        self.leaf_accesses[index_kind] = self.leaf_accesses.get(index_kind, 0) + 1

    def merge(self, other: "QueryMetrics") -> None:
        """Accumulate another statement's metrics into this one."""
        self.elapsed_ms += other.elapsed_ms
        self.cpu_ms += other.cpu_ms
        self.data_read_mb += other.data_read_mb
        self.data_written_mb += other.data_written_mb
        self.pages_read += other.pages_read
        self.rows_returned += other.rows_returned
        self.memory_peak_bytes = max(self.memory_peak_bytes, other.memory_peak_bytes)
        self.spilled_bytes += other.spilled_bytes
        self.lock_wait_ms += other.lock_wait_ms
        self.io_wait_ms += other.io_wait_ms
        self.dop = max(self.dop, other.dop)
        for kind, count in other.leaf_accesses.items():
            self.leaf_accesses[kind] = self.leaf_accesses.get(kind, 0) + count
        self.segments_skipped += other.segments_skipped
        self.segments_read += other.segments_read
        self.segment_cache_hits += other.segment_cache_hits
        self.segment_cache_misses += other.segment_cache_misses
        self.segment_cache_evictions += other.segment_cache_evictions
        self.columns_late_materialized += other.columns_late_materialized
        self.code_path_hits += other.code_path_hits
        self.code_path_fallbacks += other.code_path_fallbacks
        self.faults_injected += other.faults_injected
        self.rollbacks += other.rollbacks


#: QueryMetrics fields that are *additive* and attributed span-by-span.
#: Every charge made while a span is active lands on that span; summing a
#: field over the whole span tree (root included) reproduces the
#: statement-level total exactly — the invariant the differential tests
#: in ``tests/test_explain_analyze.py`` enforce.
SPAN_ATTRIBUTED_FIELDS = (
    "elapsed_ms",
    "cpu_ms",
    "data_read_mb",
    "data_written_mb",
    "pages_read",
    "spilled_bytes",
    "lock_wait_ms",
    "segments_skipped",
    "segments_read",
    "segment_cache_hits",
    "segment_cache_misses",
    "segment_cache_evictions",
    "columns_late_materialized",
    "code_path_hits",
    "code_path_fallbacks",
    "faults_injected",
    "rollbacks",
)


@dataclass
class OperatorSpan:
    """Per-plan-node slice of one statement's metrics.

    A span is opened when an operator's ``execute`` generator first runs
    and is *active* whenever that operator's own code is on the Python
    stack (children push their spans on top while producing a batch, so
    charges always land on the innermost running operator). All charge
    fields are **self** amounts — exclusive of children; use
    :meth:`total` for inclusive values.
    """

    label: str = ""
    op_id: int = 0
    rows_out: int = 0
    batches_out: int = 0
    elapsed_ms: float = 0.0
    cpu_ms: float = 0.0
    data_read_mb: float = 0.0
    data_written_mb: float = 0.0
    pages_read: int = 0
    spilled_bytes: int = 0
    lock_wait_ms: float = 0.0
    segments_skipped: int = 0
    segments_read: int = 0
    segment_cache_hits: int = 0
    segment_cache_misses: int = 0
    segment_cache_evictions: int = 0
    columns_late_materialized: int = 0
    code_path_hits: int = 0
    code_path_fallbacks: int = 0
    faults_injected: int = 0
    rollbacks: int = 0
    #: High-water mark of workspace memory reserved *by this operator*
    #: while its span was active (statement peak is in QueryMetrics).
    memory_peak_bytes: int = 0
    mode: str = ""
    dop: int = 1
    #: Which operator/predicate forced each encoded-column
    #: materialization while this span was active: reason -> count.
    #: Not charge-attributed (it annotates ``code_path_fallbacks``), so
    #: it is deliberately absent from SPAN_ATTRIBUTED_FIELDS.
    fallback_reasons: Dict[str, int] = field(default_factory=dict)
    children: List["OperatorSpan"] = field(default_factory=list)
    #: The PhysicalOperator this span measured (None for the statement
    #: root); explain_analyze uses it to pair spans with plan estimates.
    operator: object = None

    def walk(self):
        """Pre-order traversal of this span subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total(self, name: str):
        """Inclusive value of one attributed field (self + descendants)."""
        return getattr(self, name) + sum(c.total(name) for c in self.children)

    def self_metrics(self) -> Dict[str, object]:
        """The attributed self-amounts, as a plain dict."""
        return {name: getattr(self, name) for name in SPAN_ATTRIBUTED_FIELDS}


class ExecutionContext:
    """Mutable per-statement execution state.

    Parameters
    ----------
    cost_model:
        Constant table used to convert events into milliseconds.
    cold:
        When True, data pages are charged storage I/O (the paper's "cold
        runs"); when False everything is memory resident ("hot runs").
    memory_grant_bytes:
        Working-memory limit for sorts and hash tables. Operators that
        would exceed it must spill (Figure 4's constrained-memory setup).
    dop:
        Degree of parallelism for the *current* parallel region; operators
        enter/leave parallel regions via :meth:`charge_parallel_cpu`.
    encoded_execution:
        Per-statement override of the dictionary-coded execution path:
        True/False force it on/off for this statement, None (the default)
        defers to the process-wide default in :mod:`repro.engine.encoded`.
        Sessions own this flag so one session's toggle can never leak
        into another.
    morsel_pool:
        Optional :class:`repro.server.parallel_scan.MorselPool`. When set,
        columnstore scans partition their row groups across the pool's
        workers (morsel-style intra-query parallelism); None (the
        default) keeps every scan serial and byte-identical to the
        single-threaded engine.
    waits:
        Optional :class:`repro.storage.waits.WaitStatsCollector`.
        Observation-only: lets the morsel coordinator record real
        ``CXPACKET`` blocking; never read by operators and never part
        of modeled metrics. Not propagated to
        :meth:`spawn_worker` — morsel parallelism never nests, and
        worker-side waits reach the collector through the structures
        themselves (attributed to session 0, the internal bucket).
    """

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        cold: bool = False,
        memory_grant_bytes: Optional[int] = None,
        encoded_execution: Optional[bool] = None,
        morsel_pool: Optional[object] = None,
        waits: Optional[object] = None,
    ):
        self.cost_model = cost_model
        self.cold = cold
        self.memory_grant_bytes = (
            memory_grant_bytes
            if memory_grant_bytes is not None
            else cost_model.default_memory_grant_bytes
        )
        self.encoded_execution = encoded_execution
        self.morsel_pool = morsel_pool
        self.waits = waits
        #: Modeled I/O-wait milliseconds already replayed as real wall
        #: time by morsel workers (so a session replaying the statement's
        #: remaining I/O wait never double-sleeps).
        self.replayed_io_ms = 0.0
        self.metrics = QueryMetrics()
        self._memory_in_use = 0
        #: Root of the statement's span tree. Charges made outside any
        #: operator (statement overhead, DML index maintenance) land here.
        self.root_span = OperatorSpan(label="<statement>", op_id=0)
        self._span_stack: List[OperatorSpan] = [self.root_span]
        self._span_mark = self._metrics_mark()
        self._next_span_id = 1

    # ------------------------------------------------------------- spans
    def _metrics_mark(self):
        metrics = self.metrics
        return tuple(getattr(metrics, name) for name in SPAN_ATTRIBUTED_FIELDS)

    def _attribute_to_active(self) -> None:
        """Charge everything since the last switch point to the span that
        was active during that interval (the current stack top)."""
        mark = self._metrics_mark()
        previous = self._span_mark
        if mark != previous:
            span = self._span_stack[-1]
            for name, new_value, old_value in zip(
                    SPAN_ATTRIBUTED_FIELDS, mark, previous):
                delta = new_value - old_value
                if delta:
                    setattr(span, name, getattr(span, name) + delta)
            self._span_mark = mark

    def begin_operator_span(self, operator) -> OperatorSpan:
        """Open a span for one operator execution, parented under the
        span active right now (its producing operator, or the root)."""
        span = OperatorSpan(
            op_id=self._next_span_id,
            label=type(operator).__name__,
            mode=getattr(operator, "mode", ""),
            dop=getattr(operator, "dop", 1),
            operator=operator,
        )
        self._next_span_id += 1
        self._span_stack[-1].children.append(span)
        return span

    def push_span(self, span: OperatorSpan) -> None:
        """Make ``span`` the attribution target for subsequent charges."""
        self._attribute_to_active()
        self._span_stack.append(span)

    def pop_span(self, span: OperatorSpan) -> None:
        """Suspend ``span``; charges flow to whatever it was stacked on."""
        self._attribute_to_active()
        popped = self._span_stack.pop()
        if popped is not span:
            raise ExecutionError(
                f"span stack corruption: popped {popped.label!r}, "
                f"expected {span.label!r}")

    def finish_operator_span(self, span: OperatorSpan) -> None:
        """Seal a span once its operator is done; the label is captured
        now so post-execution state (e.g. SPILLED) is reflected."""
        if span.operator is not None:
            span.label = span.operator.describe()

    def finalize_spans(self) -> None:
        """Flush charges made since the last span switch to the active
        span (the root once every operator has finished). Without this,
        trailing statement work — and all of a DML statement, which runs
        no operators — would never reach the span tree."""
        self._attribute_to_active()

    @property
    def active_span(self) -> OperatorSpan:
        """The span charges are currently attributed to."""
        return self._span_stack[-1]

    # --------------------------------------------------- morsel workers
    def encoded_enabled(self) -> bool:
        """Whether this statement runs the dictionary-coded path: the
        per-statement override when set, the process default otherwise."""
        if self.encoded_execution is not None:
            return self.encoded_execution
        from repro.engine.encoded import encoded_execution_enabled
        return encoded_execution_enabled()

    def spawn_worker(self) -> "ExecutionContext":
        """A fresh context for one morsel worker: same cost model, run
        temperature, grant and encoded-execution setting, but its own
        :class:`QueryMetrics` (merged back via
        :meth:`absorb_worker_metrics`) and no morsel pool — morsel
        parallelism never nests."""
        return ExecutionContext(
            cost_model=self.cost_model,
            cold=self.cold,
            memory_grant_bytes=self.memory_grant_bytes,
            encoded_execution=self.encoded_execution,
        )

    def absorb_worker_metrics(self, worker: QueryMetrics) -> None:
        """Fold one morsel worker's metrics into this statement.

        Called on the coordinating thread while the scan operator's span
        is active, so the worker's charges are attributed to that span by
        the normal switch accounting — the span-sum == statement-totals
        invariant holds with parallel scans exactly as without.
        """
        self.metrics.merge(worker)

    # ------------------------------------------------------------- CPU
    def charge_serial_cpu(self, ms: float) -> None:
        """Serial work: adds to both CPU and elapsed time."""
        self.metrics.cpu_ms += ms
        self.metrics.elapsed_ms += ms

    def charge_parallel_cpu(self, ms: float, dop: int) -> None:
        """Parallel work at degree ``dop``.

        CPU grows by the full cost inflated by coordination overhead;
        elapsed only by ``ms / dop``. ``dop == 1`` degrades to serial.
        """
        dop = max(1, min(dop, self.cost_model.max_dop))
        if dop == 1:
            self.charge_serial_cpu(ms)
            return
        self.metrics.cpu_ms += ms * self.cost_model.parallel_cpu_overhead
        self.metrics.elapsed_ms += ms / dop
        self.metrics.dop = max(self.metrics.dop, dop)

    def charge_parallel_startup(self, dop: int) -> None:
        """Fixed elapsed cost of spinning up a parallel region."""
        if dop > 1:
            self.metrics.elapsed_ms += self.cost_model.parallel_startup_ms
            self.metrics.cpu_ms += self.cost_model.parallel_startup_ms * dop * 0.1

    def choose_dop(self, estimated_rows: int) -> int:
        """The engine's parallelism heuristic: serial below a row
        threshold, max DOP above it (Figure 1's DOP 1 -> 40 jump)."""
        if estimated_rows < self.cost_model.parallel_row_threshold:
            return 1
        return self.cost_model.max_dop

    # ------------------------------------------------------------- I/O
    def charge_random_read(self, pages: int) -> None:
        """Random page reads (B+ tree traversals / RID lookups), charged
        only on cold runs."""
        if not self.cold or pages <= 0:
            return
        cm = self.cost_model
        self.metrics.pages_read += pages
        self.metrics.data_read_mb += pages * cm.page_bytes / MB
        self.metrics.elapsed_ms += pages * cm.random_io_ms_per_page
        self.metrics.io_wait_ms += pages * cm.random_io_ms_per_page
        # I/O wait consumes negligible CPU.

    def charge_btree_scan_read(self, data_bytes: float) -> None:
        """Leaf-chain scan reads at B+ tree effective bandwidth."""
        if not self.cold or data_bytes <= 0:
            return
        cm = self.cost_model
        mb = data_bytes / MB
        self.metrics.pages_read += _ceil_pages(data_bytes, cm.page_bytes)
        self.metrics.data_read_mb += mb
        self.metrics.elapsed_ms += mb * cm.btree_scan_io_ms_per_mb
        self.metrics.io_wait_ms += mb * cm.btree_scan_io_ms_per_mb

    def charge_seq_read(self, data_bytes: float) -> None:
        """Large sequential reads (columnstore segments)."""
        if not self.cold or data_bytes <= 0:
            return
        cm = self.cost_model
        mb = data_bytes / MB
        self.metrics.pages_read += _ceil_pages(data_bytes, cm.page_bytes)
        self.metrics.data_read_mb += mb
        self.metrics.elapsed_ms += mb * cm.seq_io_ms_per_mb
        self.metrics.io_wait_ms += mb * cm.seq_io_ms_per_mb

    def record_data_read(self, data_bytes: float) -> None:
        """Account logical data volume on hot runs (Figure 2(b) reports
        data read even for memory-resident executions)."""
        if self.cold:
            return  # already recorded by the charge_* call
        self.metrics.data_read_mb += data_bytes / MB

    def charge_write(self, data_bytes: float) -> None:
        """Charge write I/O for the given number of bytes."""
        cm = self.cost_model
        mb = data_bytes / MB
        self.metrics.data_written_mb += mb
        self.metrics.elapsed_ms += mb * cm.write_io_ms_per_mb
        self.metrics.io_wait_ms += mb * cm.write_io_ms_per_mb

    # ----------------------------------------------------------- memory
    def acquire_memory(self, nbytes: int) -> bool:
        """Try to reserve ``nbytes`` of workspace memory.

        Returns False when the grant would be exceeded — the caller must
        then use a spilling implementation. Never raises; running out of
        grant is a normal, modelled condition.
        """
        if self._memory_in_use + nbytes > self.memory_grant_bytes:
            return False
        self._memory_in_use += nbytes
        self.metrics.memory_peak_bytes = max(
            self.metrics.memory_peak_bytes, self._memory_in_use
        )
        span = self._span_stack[-1]
        span.memory_peak_bytes = max(span.memory_peak_bytes,
                                     self._memory_in_use)
        return True

    def release_memory(self, nbytes: int) -> None:
        """Return previously acquired workspace memory."""
        self._memory_in_use -= nbytes
        if self._memory_in_use < 0:
            raise ExecutionError("memory accounting underflow")

    @property
    def memory_in_use(self) -> int:
        """Currently reserved workspace bytes."""
        return self._memory_in_use

    def charge_spill(self, nbytes: int) -> None:
        """A sort or hash operator wrote ``nbytes`` to tempdb and will read
        it back: charge write + read I/O regardless of hot/cold (spills
        always hit storage) plus extra CPU."""
        cm = self.cost_model
        mb = nbytes / MB
        self.metrics.spilled_bytes += nbytes
        self.metrics.data_written_mb += mb
        self.metrics.elapsed_ms += mb * (cm.write_io_ms_per_mb + cm.seq_io_ms_per_mb)
        self.metrics.io_wait_ms += mb * (cm.write_io_ms_per_mb + cm.seq_io_ms_per_mb)

    # ------------------------------------------------------------- misc
    def charge_lock_wait(self, ms: float) -> None:
        """Add blocked time to elapsed (lock waits burn no CPU)."""
        self.metrics.lock_wait_ms += ms
        self.metrics.elapsed_ms += ms

    def charge_statement_overhead(self) -> None:
        """Fixed per-statement cost (parse, plan cache, logging)."""
        self.charge_serial_cpu(self.cost_model.statement_overhead_ms)


def _ceil_pages(data_bytes: float, page_bytes: int) -> int:
    """Pages covering ``data_bytes``: proper ceiling division (exact page
    multiples previously over-counted by one page)."""
    return int(math.ceil(data_bytes / page_bytes))
