"""EXPLAIN ANALYZE: annotated plan trees from operator spans.

The paper's methodology attributes every experiment to per-query CPU,
elapsed time, data read, and memory obtained from the Query Store and
DMVs (Sections 3.1, 5.2.1). :class:`AnalyzedQuery` turns one executed
statement's :class:`~repro.engine.metrics.OperatorSpan` tree into the
equivalent of SQL Server's *actual execution plan*: every node shows the
optimizer's estimated rows next to the rows it actually produced, plus
the elapsed/CPU/I-O/memory/spill charges attributed to it.

Two renderings are provided:

* :meth:`AnalyzedQuery.format` — an indented text tree for terminals;
* :meth:`AnalyzedQuery.to_chrome_trace` — Chrome trace-event JSON
  (load ``chrome://tracing`` or https://ui.perfetto.dev) laying the
  plan out on the statement's modeled timeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.metrics import OperatorSpan


class AnalyzedQuery:
    """One executed statement plus its per-operator actuals."""

    def __init__(self, sql: str, result):
        self.sql = sql
        self.result = result
        self.root_span: Optional[OperatorSpan] = result.root_span

    # ------------------------------------------------------------- text
    def format(self) -> str:
        """Indented plan tree with estimated vs actual rows and the
        per-node self charges, headed by the statement totals."""
        metrics = self.result.metrics
        lines = [
            f"EXPLAIN ANALYZE {self.sql}",
            (f"statement: elapsed={metrics.elapsed_ms:.3f} ms  "
             f"cpu={metrics.cpu_ms:.3f} ms  "
             f"read={metrics.data_read_mb:.3f} MB  "
             f"mem peak={metrics.memory_peak_bytes} B  "
             f"spilled={metrics.spilled_bytes} B  "
             f"rows={metrics.rows_returned}"),
        ]
        wait_profile = getattr(self.result, "wait_profile", None)
        if wait_profile:
            # Real blocking observed while the statement ran (wall
            # clock, observation-only) — absent entirely on an
            # uncontended run so default output stays unchanged.
            waits = "  ".join(
                f"{wait_type}={row['count']}x/{row['wait_ms']:.3f} ms"
                for wait_type, row in wait_profile.items())
            lines.append(f"waits: {waits}")
        if self.root_span is None:
            lines.append("(no span data recorded)")
            return "\n".join(lines)
        overhead = self.root_span
        lines.append(
            f"statement overhead (parse/plan/DML): "
            f"elapsed={overhead.elapsed_ms:.3f} ms "
            f"cpu={overhead.cpu_ms:.3f} ms")
        for span in overhead.children:
            self._format_span(span, 0, lines)
        return "\n".join(lines)

    def _format_span(self, span: OperatorSpan, depth: int,
                     lines: List[str]) -> None:
        pad = "  " * depth
        lines.append(f"{pad}{span.label}")
        est = _estimated_rows(span)
        est_text = f"{est:.0f}" if est is not None else "?"
        batches = "batch" if span.batches_out == 1 else "batches"
        lines.append(
            f"{pad}  est rows={est_text}  actual rows={span.rows_out} "
            f"({span.batches_out} {batches})")
        detail = (f"{pad}  self: elapsed={span.elapsed_ms:.3f} ms "
                  f"cpu={span.cpu_ms:.3f} ms "
                  f"read={span.data_read_mb:.3f} MB "
                  f"pages={span.pages_read}")
        if span.memory_peak_bytes:
            detail += f" mem={span.memory_peak_bytes} B"
        if span.spilled_bytes:
            detail += f" spilled={span.spilled_bytes} B"
        if span.segments_read or span.segments_skipped:
            detail += (f" segments={span.segments_read}"
                       f"(+{span.segments_skipped} skipped)")
        if span.segment_cache_hits or span.segment_cache_misses:
            detail += (f" cache={span.segment_cache_hits}h/"
                       f"{span.segment_cache_misses}m")
        if span.code_path_hits or span.code_path_fallbacks:
            detail += (f" code-path={span.code_path_hits}h/"
                       f"{span.code_path_fallbacks}f")
        lines.append(detail)
        if span.fallback_reasons:
            # Name the operator/predicate that forced each encoded-column
            # materialization: encoded-coverage regressions should be
            # readable in plan output, not a silent counter bump.
            for reason, count in sorted(span.fallback_reasons.items()):
                lines.append(f"{pad}  fallback x{count}: {reason}")
        for child in span.children:
            self._format_span(child, depth + 1, lines)
        # Plan subtrees that never executed (e.g. below a TOP 0) still
        # deserve a mention so the tree matches the optimizer's shape.
        operator = span.operator
        if operator is not None:
            executed = {id(c.operator) for c in span.children}
            for child_op in getattr(operator, "children", ()):
                if id(child_op) not in executed:
                    lines.append(f"{pad}  {child_op.describe()}"
                                 f"  [never executed]")

    # ----------------------------------------------------------- trace
    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event JSON for the statement's modeled timeline.

        Each span becomes one complete ("X") event whose duration is its
        inclusive modeled elapsed time; children are laid out
        sequentially inside their parent with the parent's self time at
        the end, so the nesting in the trace viewer mirrors the plan
        tree. Timestamps are *modeled* milliseconds (scaled to trace
        microseconds), not wall clock.
        """
        events: List[Dict[str, object]] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": f"repro EXPLAIN ANALYZE: {self.sql[:120]}"},
        }]
        if self.root_span is not None:
            self._layout(self.root_span, 0.0, events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def _layout(self, span: OperatorSpan, start_ms: float,
                events: List[Dict[str, object]]) -> float:
        cursor = start_ms
        for child in span.children:
            cursor = self._layout(child, cursor, events)
        end_ms = cursor + span.elapsed_ms
        est = _estimated_rows(span)
        events.append({
            "name": span.label or "<statement>",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": round(start_ms * 1000.0, 3),
            "dur": round((end_ms - start_ms) * 1000.0, 3),
            "args": {
                "rows_out": span.rows_out,
                "batches_out": span.batches_out,
                "est_rows": est,
                "self_elapsed_ms": round(span.elapsed_ms, 6),
                "self_cpu_ms": round(span.cpu_ms, 6),
                "self_data_read_mb": round(span.data_read_mb, 6),
                "pages_read": span.pages_read,
                "spilled_bytes": span.spilled_bytes,
                "memory_peak_bytes": span.memory_peak_bytes,
                "mode": span.mode,
                "dop": span.dop,
            },
        })
        return end_ms


def _estimated_rows(span: OperatorSpan) -> Optional[float]:
    """Optimizer row estimate for a span's operator, when the
    materializer recorded the plan-node pairing."""
    plan_node = getattr(span.operator, "plan_node", None)
    if plan_node is None:
        return None
    return float(plan_node.est_rows)
