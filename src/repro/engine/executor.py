"""Top-level statement executor.

Ties the stack together: SQL text -> parse -> bind -> optimize ->
materialize -> run, returning rows plus the metrics the paper reports
(elapsed, CPU, data read, memory, spills). DML statements locate their
target rows through the best available access path, then route the
modifications through every index on the table — which is where the
update-cost asymmetries of Figure 5 are measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.batch import batch_to_rows
from repro.engine.expressions import (
    ColumnRange,
    Expr,
    compile_row_predicate,
    eval_batch,
    eval_row,
    extract_column_ranges,
)
from repro.engine.metrics import ExecutionContext, OperatorSpan, QueryMetrics
from repro.optimizer.catalog import Catalog
from repro.optimizer.cost_model import CostingOptions
from repro.optimizer.materializer import Materializer
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import PlannedQuery
from repro.sql.binder import (
    Binder,
    BoundDelete,
    BoundInsert,
    BoundSelect,
    BoundUpdate,
)
from repro.sql.parser import parse
from repro.storage.btree import PrimaryBTreeIndex, SecondaryBTreeIndex
from repro.storage.columnstore import RID_COLUMN, ColumnstoreIndex
from repro.storage.database import Database
from repro.storage.table import Table


@dataclass
class QueryResult:
    """Rows, column names, metrics, and (for SELECTs) the chosen plan."""

    columns: List[str]
    rows: List[Tuple[object, ...]]
    metrics: QueryMetrics
    plan: Optional[PlannedQuery] = None
    rows_affected: int = 0
    #: Root of the per-operator span tree recorded while executing (the
    #: synthetic "<statement>" span; operator spans hang beneath it).
    root_span: Optional[OperatorSpan] = None
    #: Modeled I/O milliseconds already replayed as real wall time by
    #: morsel workers (see :mod:`repro.server.parallel_scan`); the
    #: serving layer sleeps only the remainder of ``metrics.io_wait_ms``
    #: so overlapped waits are never double-counted.
    replayed_io_ms: float = 0.0
    #: Real blocking observed while this statement executed:
    #: ``{wait_type: {"count": n, "wait_ms": ms}}``. Observation-only
    #: wall-clock data (empty on an uncontended run) — never part of the
    #: modeled metrics, shown by EXPLAIN ANALYZE and aggregated by the
    #: Query Store.
    wait_profile: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> object:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]

    def column(self, name: str) -> List[object]:
        """Values of one result/batch/stats column by name."""
        try:
            i = self.columns.index(name)
        except ValueError:
            raise ExecutionError(f"no result column {name!r}") from None
        return [row[i] for row in self.rows]


class Executor:
    """Executes SQL statements against a database."""

    def __init__(self, database: Database,
                 catalog: Optional[Catalog] = None,
                 query_store: Optional["QueryStore"] = None):
        self.database = database
        self.catalog = catalog or Catalog(database)
        self.binder = Binder(database)
        self.materializer = Materializer(database)
        #: Optional Query Store recording every execution (Section 3.1's
        #: monitoring methodology). None disables recording.
        self.query_store = query_store
        #: Per-executor (therefore per-session) encoded-execution
        #: override threaded into every statement's ExecutionContext;
        #: None defers to the process default in
        #: :mod:`repro.engine.encoded`.
        self.encoded_execution: Optional[bool] = None
        #: Morsel worker pool for intra-query-parallel columnstore scans
        #: (:class:`repro.server.parallel_scan.MorselPool`); None keeps
        #: every scan serial.
        self.morsel_pool = None

    def refresh(self) -> None:
        """Invalidate cached statistics and design descriptors (call after
        physical design changes or bulk DML)."""
        self.catalog.invalidate()

    # ------------------------------------------------------------ running
    def execute(
        self,
        sql: str,
        params: Sequence[object] = (),
        cold: bool = False,
        memory_grant_bytes: Optional[int] = None,
        concurrent_queries: int = 1,
    ) -> QueryResult:
        """Parse, plan, and run one statement."""
        statement = parse(sql, params)
        database = self.database
        # Every user statement advances the deterministic logical clock;
        # telemetry stamps recorded while it runs carry its sequence
        # number (observation-only: no modeled cost).
        stamp = database.telemetry.clock.advance()
        # Emitted before the system views refresh so a query over
        # dm_xe_ring_buffer observes its own statement_begin.
        database.events.emit("statement_begin", {
            "sql": sql[:200], "statement": stamp,
        })
        self._refresh_system_views(statement)
        try:
            with database.waits.statement() as profile:
                bound = self.binder.bind(statement)
                ctx = ExecutionContext(
                    cost_model=database.cost_model, cold=cold,
                    memory_grant_bytes=memory_grant_bytes,
                    encoded_execution=self.encoded_execution,
                    morsel_pool=self.morsel_pool,
                    waits=database.waits,
                )
                ctx.charge_statement_overhead()
                if isinstance(bound, BoundSelect):
                    result = self._run_select(bound, ctx, concurrent_queries)
                elif isinstance(bound, (BoundUpdate, BoundDelete,
                                        BoundInsert)):
                    # On a durable database every DML statement is one WAL
                    # transaction: the redo ops raised by its Table calls
                    # buffer in the scope and hit disk together with the
                    # COMMIT before the statement returns. Failure aborts
                    # the scope — nothing from this statement ever reaches
                    # the log.
                    with self._wal_statement():
                        if isinstance(bound, BoundUpdate):
                            result = self._run_update(bound, ctx)
                        elif isinstance(bound, BoundDelete):
                            result = self._run_delete(bound, ctx)
                        else:
                            result = self._run_insert(bound, ctx)
                else:
                    raise ExecutionError(
                        f"cannot execute {type(bound).__name__}")
        except BaseException as exc:
            database.events.emit("statement_end", {
                "sql": sql[:200], "statement": stamp,
                "error": type(exc).__name__,
            })
            raise
        ctx.finalize_spans()
        result.root_span = ctx.root_span
        result.replayed_io_ms = ctx.replayed_io_ms
        result.wait_profile = {
            wait_type: {"count": int(count), "wait_ms": round(ms, 4)}
            for wait_type, (count, ms) in sorted(profile.items())
        }
        if self.query_store is not None:
            from repro.engine.query_store import (
                node_stats_from_span,
                plan_fingerprint,
            )
            fingerprint = plan_fingerprint(result.plan)
            prior = self.query_store.stats(sql)
            if (fingerprint and prior is not None and prior.plan_fingerprints
                    and fingerprint not in prior.plan_fingerprints):
                database.events.emit("plan_change", {
                    "sql": sql[:200],
                    "previous_plan": prior.plan_fingerprints[-1][:200],
                    "new_plan": fingerprint[:200],
                })
            self.query_store.record(sql, result.metrics, fingerprint,
                                    node_stats=node_stats_from_span(
                                        ctx.root_span),
                                    wait_profile=result.wait_profile)
        end_payload = {
            "sql": sql[:200], "statement": stamp,
            "elapsed_ms": round(result.metrics.elapsed_ms, 4),
            "cpu_ms": round(result.metrics.cpu_ms, 4),
            "rows": len(result.rows),
            "rows_affected": result.rows_affected,
        }
        if result.wait_profile:
            # Wall-clock blocking appears only when it happened, so the
            # single-threaded determinism harnesses see stable payloads.
            end_payload["waits"] = result.wait_profile
        database.events.emit("statement_end", end_payload)
        database.history.maybe_sample(database)
        return result

    def explain_analyze(
        self,
        sql: str,
        params: Sequence[object] = (),
        cold: bool = False,
        memory_grant_bytes: Optional[int] = None,
    ) -> "AnalyzedQuery":
        """Execute ``sql`` and return the plan tree annotated with actual
        per-operator statistics (rows, batches, elapsed/CPU, I/O, memory,
        spills) next to the optimizer's estimates — the reproduction of
        SQL Server's actual-execution-plan / DMV surface the paper's
        methodology leans on (Sections 3.1, 5.2.1)."""
        from repro.engine.analyze import AnalyzedQuery
        result = self.execute(sql, params=params, cold=cold,
                              memory_grant_bytes=memory_grant_bytes)
        return AnalyzedQuery(sql=sql, result=result)

    def explain(self, sql: str, params: Sequence[object] = ()) -> str:
        """The optimizer's chosen plan for a SELECT, as indented text
        (EXPLAIN without executing)."""
        return self.plan(sql, params).explain()

    def plan(self, sql: str, params: Sequence[object] = (),
             cold: bool = False,
             memory_grant_bytes: Optional[int] = None) -> PlannedQuery:
        """Optimize a SELECT without executing it."""
        bound = self.binder.bind(parse(sql, params))
        if not isinstance(bound, BoundSelect):
            raise ExecutionError("plan() supports SELECT statements")
        return self._optimizer(memory_grant_bytes, cold).optimize(bound)

    def _refresh_system_views(self, statement) -> None:
        """Rematerialize any ``dm_*`` system view the statement references
        so it binds and executes against current telemetry."""
        from repro.engine.dmv import (
            SYSTEM_VIEW_NAMES,
            materialize_system_views,
        )
        refs = getattr(statement, "table_refs", None)
        if refs is None:
            table = getattr(statement, "table", None)
            refs = [table] if table is not None else []
        referenced = [
            ref.table for ref in refs
            if ref.table in SYSTEM_VIEW_NAMES
            and not self.database.has_table(ref.table)
        ]
        if not referenced:
            return
        for name in materialize_system_views(
                self.database, names=referenced,
                query_store=self.query_store,
                buffer_pool=getattr(self.database, "buffer_pool", None)):
            self.catalog.invalidate(name)

    def _optimizer(self, memory_grant_bytes: Optional[int],
                   cold: bool, concurrent_queries: int = 1) -> Optimizer:
        options = CostingOptions(
            cost_model=self.database.cost_model, cold=cold,
            memory_grant_bytes=memory_grant_bytes,
            concurrent_queries=concurrent_queries,
        )
        return Optimizer(self.catalog, options,
                         telemetry=self.database.telemetry)

    def _run_select(self, bound: BoundSelect, ctx: ExecutionContext,
                    concurrent_queries: int) -> QueryResult:
        planned = self._optimizer(
            ctx.memory_grant_bytes, ctx.cold, concurrent_queries,
        ).optimize(bound)
        root = self.materializer.materialize(planned)
        rows: List[Tuple[object, ...]] = []
        names = root.output_columns
        for batch in root.execute(ctx):
            rows.extend(batch_to_rows(batch, names))
        ctx.metrics.rows_returned = len(rows)
        return QueryResult(columns=names, rows=rows, metrics=ctx.metrics,
                           plan=planned)

    # ---------------------------------------------------------------- DML
    def _positions_for(self, table: Table) -> Dict[str, int]:
        positions = {}
        for ordinal, column in enumerate(table.schema.columns):
            positions[column.name] = ordinal
            positions[f"{table.name}.{column.name}"] = ordinal
        return positions

    def _locate_rids(self, table: Table, where: Optional[Expr],
                     top: Optional[int], ctx: ExecutionContext) -> List[int]:
        """Find target row ids through the cheapest available access path.

        Mirrors access-path selection for DML: a sargable secondary or
        primary B+ tree seek when possible, a columnstore scan when the
        primary is a CSI, a heap scan otherwise.
        """
        positions = self._positions_for(table)
        predicate = compile_row_predicate(where, positions)
        qualified_ranges = extract_column_ranges(where)
        ranges = {
            name.split(".", 1)[-1]: column_range
            for name, column_range in qualified_ranges.items()
        }
        limit = top if top is not None else None
        rids: List[int] = []

        def _take(rid: int, row: Tuple[object, ...]) -> bool:
            if predicate(row):
                rids.append(rid)
                if limit is not None and len(rids) >= limit:
                    return True
            return False

        primary = table.primary
        # 1) Primary B+ tree seek on its key prefix.
        if isinstance(primary, PrimaryBTreeIndex):
            bounds = _prefix_bounds_for(primary.key_columns, ranges)
            scanned = 0
            for rid, row in primary.seek_range(bounds[0], bounds[1], ctx,
                                               low_inclusive=bounds[2],
                                               high_inclusive=bounds[3]):
                scanned += 1
                if _take(rid, row):
                    break
            ctx.charge_serial_cpu(
                scanned * ctx.cost_model.row_cpu_ms_per_row)
            return rids
        # 2) Secondary B+ tree seek with lookups.
        best_index = self._best_secondary_for(table, ranges)
        if best_index is not None:
            bounds = _prefix_bounds_for(best_index.key_columns, ranges)
            scanned = 0
            for rid, _ in best_index.seek_range(bounds[0], bounds[1], ctx,
                                                low_inclusive=bounds[2],
                                                high_inclusive=bounds[3]):
                scanned += 1
                row = table.get_row(rid)
                ctx.charge_random_read(1)
                table.primary.usage.record_lookup()
                if _take(rid, row):
                    break
            ctx.charge_serial_cpu(
                scanned * ctx.cost_model.row_cpu_ms_per_row * 2)
            return rids
        # 3) Primary columnstore scan with segment elimination.
        if isinstance(primary, ColumnstoreIndex):
            elimination = {
                column: column_range.as_bounds()
                for column, column_range in ranges.items()
            }
            needed = (
                [c for c in _bare_columns(where, table)]
                or [table.schema.columns[0].name]
            )
            done = False
            for batch in primary.scan(needed, ctx,
                                      elimination_ranges=elimination or None,
                                      include_rids=True):
                ctx.charge_serial_cpu(
                    len(batch) * ctx.cost_model.batch_cpu_ms_per_row)
                if where is not None:
                    renamed = {
                        f"{table.name}.{c}": batch.column(c) for c in needed
                    }
                    renamed.update({c: batch.column(c) for c in needed})
                    from repro.engine.batch import Batch
                    mask = eval_batch(where, Batch(renamed))
                else:
                    mask = np.ones(len(batch), dtype=bool)
                for rid in batch.column(RID_COLUMN)[mask].tolist():
                    rids.append(int(rid))
                    if limit is not None and len(rids) >= limit:
                        done = True
                        break
                if done:
                    break
            return rids
        # 4) Heap scan.
        scanned = 0
        for rid, row in primary.scan(ctx):
            scanned += 1
            if _take(rid, row):
                break
        ctx.charge_serial_cpu(scanned * ctx.cost_model.row_cpu_ms_per_row)
        return rids

    def _best_secondary_for(self, table: Table, ranges: Dict[str, ColumnRange]
                            ) -> Optional[SecondaryBTreeIndex]:
        best = None
        for index in table.secondary_btrees():
            leading = index.key_columns[0]
            if leading in ranges:
                if best is None or len(index.key_columns) < len(
                        best.key_columns):
                    best = index
        return best

    def _run_update(self, bound: BoundUpdate,
                    ctx: ExecutionContext) -> QueryResult:
        table = bound.table
        rids = self._locate_rids(table, bound.where, bound.top, ctx)
        positions = self._positions_for(table)
        assignment_ordinals = [
            (table.schema.ordinal(column), expr)
            for column, expr in bound.assignments
        ]
        updates = []
        for rid in rids:
            row = table.get_row(rid)
            # Re-fetching the target row is the same random access that
            # _locate_rids charges; cold update runs previously got it
            # for free, under-reporting Figure 5's update costs.
            ctx.charge_random_read(1)
            new_row = list(row)
            for ordinal, expr in assignment_ordinals:
                new_row[ordinal] = eval_row(expr, row, positions)
            updates.append((rid, tuple(new_row)))
        table.update_rids(updates, ctx)
        ctx.metrics.rows_returned = 0
        return QueryResult(columns=[], rows=[], metrics=ctx.metrics,
                           rows_affected=len(updates))

    def _run_delete(self, bound: BoundDelete,
                    ctx: ExecutionContext) -> QueryResult:
        table = bound.table
        rids = self._locate_rids(table, bound.where, bound.top, ctx)
        table.delete_rids(rids, ctx)
        return QueryResult(columns=[], rows=[], metrics=ctx.metrics,
                           rows_affected=len(rids))

    def _run_insert(self, bound: BoundInsert,
                    ctx: ExecutionContext) -> QueryResult:
        table = bound.table
        inserted: List[int] = []
        try:
            for row in bound.rows:
                inserted.append(table.insert_row(row, ctx))
        except BaseException:
            # Statement atomicity across rows: insert_row already undid
            # the failing row, compensate the successfully applied
            # prefix so a multi-row INSERT is all-or-nothing in memory
            # (its WAL scope aborts, so it must also vanish here).
            with table._rollback_guard():
                for rid in reversed(inserted):
                    table.delete_rid(rid)
            raise
        return QueryResult(columns=[], rows=[], metrics=ctx.metrics,
                           rows_affected=len(bound.rows))

    def _wal_statement(self):
        """The WAL statement scope for one DML statement (no-op context
        on a non-durable database)."""
        wal = self.database.wal
        if wal is None:
            from contextlib import nullcontext
            return nullcontext()
        return wal.statement()


def _prefix_bounds_for(key_columns: Sequence[str],
                       ranges: Dict[str, ColumnRange]):
    """Composite-key seek bounds from per-column ranges: points along the
    key prefix, optionally ending in one non-point range."""
    from repro.engine.operators.scans import compose_prefix_bounds
    seek_ranges = []
    for column in key_columns:
        column_range = ranges.get(column)
        if column_range is None:
            break
        seek_ranges.append(column_range)
        if not column_range.is_point:
            break
    if not seek_ranges:
        return None, None, True, True
    return compose_prefix_bounds(seek_ranges)


def _bare_columns(where: Optional[Expr], table: Table) -> List[str]:
    if where is None:
        return []
    out = []
    for name in where.columns():
        bare = name.split(".", 1)[-1]
        if bare in table.schema and bare not in out:
            out.append(bare)
    return out
