"""Discrete-event concurrency simulator.

Reproduces the paper's multi-client experiments (Figures 6, 11, 13)
without wall-clock dependence. Clients issue statements in a closed loop
(no think time, like the paper's setup); each statement goes through
three phases:

1. **Lock acquisition** — all locks upfront through the
   :class:`~repro.engine.locks.LockManager`; blocked statements queue
   FIFO and accumulate lock-wait time.
2. **CPU phase** — statements share ``n_cores`` under processor sharing:
   each active statement receives ``min(dop, fair share)`` cores, with
   unused share redistributed (waterfilling). This is what moves the
   B+ tree/CSI crossover with concurrency (Figure 13): CSI's parallel
   scans starve each other at high client counts while serial B+ tree
   plans keep their single core busy.
3. **I/O phase** — a fixed non-CPU delay (cold reads, spills).

Statement costs come from solo executions measured by the real engine —
the simulator composes measured behaviour, it does not invent costs.

Resource pools (Section 5.2.2's CPU affinitization of the C and H
workloads) are modelled by giving each statement a pool label and each
pool a core budget.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import TransactionError
from repro.engine.locks import (
    LOCK_S,
    LOCK_X,
    READ_COMMITTED,
    SNAPSHOT,
    SNAPSHOT_READ_VERSION_MS,
    LockManager,
    Resource,
    read_cpu_multiplier,
    read_lock_requests,
    write_lock_requests,
)


@dataclass
class StatementProfile:
    """Solo-measured execution profile of one statement template."""

    tag: str
    cpu_ms: float
    io_ms: float = 0.0
    dop: int = 1
    is_write: bool = False
    #: Resources read (locked under SERIALIZABLE) / written (always X).
    read_resources: Tuple[Resource, ...] = ()
    write_resources: Tuple[Resource, ...] = ()
    pool: str = "default"


#: A client script returns the next statement profile each call.
ClientScript = Callable[[], StatementProfile]


@dataclass
class StatementRecord:
    """One completed statement in the simulation timeline."""
    tag: str
    start_ms: float
    end_ms: float
    lock_wait_ms: float
    pool: str

    @property
    def latency_ms(self) -> float:
        """End-to-end latency of this statement (ms)."""
        return self.end_ms - self.start_ms


@dataclass
class SimulationResult:
    """All statement records plus the simulated duration."""
    records: List[StatementRecord]
    duration_ms: float

    def latencies(self, tag: Optional[str] = None) -> List[float]:
        """Latencies of all recorded statements (optionally one tag)."""
        return [r.latency_ms for r in self.records
                if tag is None or r.tag == tag]

    def median_latency(self, tag: Optional[str] = None) -> float:
        """Median latency in ms (NaN when nothing matched)."""
        values = sorted(self.latencies(tag))
        if not values:
            return float("nan")
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2

    def mean_latency(self, tag: Optional[str] = None) -> float:
        """Mean latency in ms (NaN when nothing matched)."""
        values = self.latencies(tag)
        return sum(values) / len(values) if values else float("nan")

    def throughput_per_sec(self, tag: Optional[str] = None) -> float:
        """Completed statements per second of simulated time."""
        n = len(self.latencies(tag))
        return n / (self.duration_ms / 1000.0) if self.duration_ms else 0.0

    def total_lock_wait_ms(self) -> float:
        """Sum of lock-wait time across all statements."""
        return sum(r.lock_wait_ms for r in self.records)

    def tags(self) -> List[str]:
        """Distinct statement tags observed, sorted."""
        return sorted({r.tag for r in self.records})


class _Active:
    __slots__ = ("client", "profile", "start", "lock_acquired_at",
                 "remaining_cpu", "phase", "io_until")

    def __init__(self, client: int, profile: StatementProfile, now: float):
        self.client = client
        self.profile = profile
        self.start = now
        self.lock_acquired_at = now
        self.remaining_cpu = max(0.0, profile.cpu_ms)
        self.phase = "lock"
        self.io_until = 0.0


class ConcurrencySimulator:
    """Closed-loop multi-client simulator over one lock manager."""

    def __init__(
        self,
        n_cores: int = 40,
        isolation: str = READ_COMMITTED,
        pool_cores: Optional[Dict[str, int]] = None,
        epsilon_ms: float = 1e-6,
    ):
        self.n_cores = n_cores
        self.isolation = isolation
        #: Core budget per resource pool; pools absent here share the
        #: leftover cores.
        self.pool_cores = pool_cores or {}
        self.epsilon_ms = epsilon_ms

    # ---------------------------------------------------------------- run
    def run(self, clients: Sequence[ClientScript],
            duration_ms: float = 10_000.0,
            max_statements: Optional[int] = None) -> SimulationResult:
        """Run the closed-loop simulation and return its results."""
        locks = LockManager()
        now = 0.0
        records: List[StatementRecord] = []
        active: Dict[int, _Active] = {}
        blocked: Dict[int, _Active] = {}
        finished_count = 0

        def start_statement(client: int) -> None:
            """Draw the client's next statement and try its locks."""
            profile = clients[client]()
            statement = _Active(client, profile, now)
            if self.isolation == SNAPSHOT and not profile.is_write:
                # Version-chain traversal: an additive cost per read
                # statement, independent of the plan's efficiency.
                statement.remaining_cpu += SNAPSHOT_READ_VERSION_MS
            requests = self._lock_requests(profile)
            if not requests or locks.try_acquire_all(client, requests):
                statement.phase = "cpu"
                statement.lock_acquired_at = now
                active[client] = statement
            else:
                statement.phase = "lock"
                blocked[client] = statement

        for client in range(len(clients)):
            start_statement(client)

        while now < duration_ms:
            if max_statements is not None and finished_count >= max_statements:
                break
            if not active and not blocked:
                break
            if not active and blocked:
                raise TransactionError(
                    "all clients blocked on locks: deadlock in simulation")
            rates = self._cpu_rates(active)
            next_event = math.inf
            event_client = None
            for client, statement in active.items():
                if statement.phase == "cpu":
                    rate = rates.get(client, 0.0)
                    if statement.remaining_cpu <= self.epsilon_ms:
                        eta = 0.0
                    elif rate <= 0:
                        continue
                    else:
                        eta = statement.remaining_cpu / rate
                else:  # io
                    eta = statement.io_until - now
                if eta < next_event:
                    next_event = eta
                    event_client = client
            if event_client is None:
                raise TransactionError("simulation stalled (no runnable work)")
            next_event = max(next_event, 0.0)
            advance_to = min(now + next_event, duration_ms)
            elapsed = advance_to - now
            for client, statement in active.items():
                if statement.phase == "cpu":
                    statement.remaining_cpu -= rates.get(client, 0.0) * elapsed
            now = advance_to
            if now >= duration_ms:
                break

            statement = active[event_client]
            if statement.phase == "cpu" and statement.remaining_cpu \
                    <= self.epsilon_ms:
                if statement.profile.io_ms > 0:
                    statement.phase = "io"
                    statement.io_until = now + statement.profile.io_ms
                    continue
                self._finish(event_client, statement, locks, active,
                             blocked, records, now)
                finished_count += 1
                start_statement(event_client)
            elif statement.phase == "io" and statement.io_until <= now \
                    + self.epsilon_ms:
                self._finish(event_client, statement, locks, active,
                             blocked, records, now)
                finished_count += 1
                start_statement(event_client)

        return SimulationResult(records=records, duration_ms=now)

    # ------------------------------------------------------------ internals
    def _lock_requests(self, profile: StatementProfile):
        requests = list(write_lock_requests(profile.write_resources))
        requests.extend(
            read_lock_requests(self.isolation, profile.read_resources))
        return requests

    def _finish(self, client, statement, locks, active, blocked, records,
                now) -> None:
        del active[client]
        woken = locks.release_all(client)
        records.append(StatementRecord(
            tag=statement.profile.tag,
            start_ms=statement.start,
            end_ms=now,
            lock_wait_ms=statement.lock_acquired_at - statement.start,
            pool=statement.profile.pool,
        ))
        # Retry blocked statements whose locks may now be free (FIFO).
        for waiter in sorted(woken):
            waiting = blocked.get(waiter)
            if waiting is None:
                continue
            requests = self._lock_requests(waiting.profile)
            if locks.try_acquire_all(waiter, requests):
                del blocked[waiter]
                waiting.phase = "cpu"
                waiting.lock_acquired_at = now
                active[waiter] = waiting

    def _cpu_rates(self, active: Dict[int, _Active]) -> Dict[int, float]:
        """Waterfilling processor-sharing within each resource pool."""
        rates: Dict[int, float] = {}
        by_pool: Dict[str, List[Tuple[int, _Active]]] = {}
        for client, statement in active.items():
            if statement.phase != "cpu":
                continue
            by_pool.setdefault(statement.profile.pool, []).append(
                (client, statement))
        reserved = sum(self.pool_cores.get(pool, 0) for pool in by_pool
                       if pool in self.pool_cores)
        leftover = max(1, self.n_cores - reserved)
        for pool, members in by_pool.items():
            cores = self.pool_cores.get(pool, leftover)
            rates.update(self._waterfill(members, cores))
        return rates

    def _waterfill(self, members: List[Tuple[int, "_Active"]],
                   cores: int) -> Dict[int, float]:
        """Distribute ``cores`` among statements, capping each at its DOP
        and its snapshot-read multiplier-adjusted demand."""
        out: Dict[int, float] = {}
        remaining = list(members)
        budget = float(cores)
        while remaining and budget > 1e-12:
            share = budget / len(remaining)
            capped = [(c, s) for c, s in remaining
                      if s.profile.dop <= share]
            if not capped:
                for client, statement in remaining:
                    out[client] = share / self._read_penalty(statement)
                return out
            for client, statement in capped:
                out[client] = statement.profile.dop / self._read_penalty(
                    statement)
                budget -= statement.profile.dop
            remaining = [(c, s) for c, s in remaining
                         if (c, s) not in capped]
        for client, _ in remaining:
            out.setdefault(client, 0.0)
        return out

    def _read_penalty(self, statement: "_Active") -> float:
        if statement.profile.is_write:
            return 1.0
        return read_cpu_multiplier(self.isolation)
