"""Scalar expressions and predicates.

One expression AST serves the whole stack: the SQL parser produces it, the
optimizer analyses it (conjunct extraction, sargable-range derivation for
index seeks and segment elimination), and the executor evaluates it in
both row mode (per-tuple) and batch mode (vectorized over numpy arrays).

Supported nodes: column references, literals, arithmetic (+ - * /),
comparisons (= != < <= > >=), BETWEEN, IN, AND/OR/NOT.

NULL semantics follow SQL's three-valued logic for comparisons: any
comparison with NULL is not-true, so filters drop those rows. (Full
UNKNOWN propagation through NOT is simplified to two-valued logic after
the comparison level, which matches every query in the reproduced
workloads.)
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch
from repro.engine.encoded import (
    EncodedColumn,
    between_codes,
    compare_codes,
    isin_codes,
    note_code_fallback,
    note_code_hit,
)


class Expr:
    """Base class for expression nodes."""

    def columns(self) -> List[str]:
        """All column names referenced by this expression."""
        out: List[str] = []
        self._collect_columns(out)
        return out

    def _collect_columns(self, out: List[str]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a column by (qualified or bare) name."""

    name: str

    def _collect_columns(self, out: List[str]) -> None:
        out.append(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value."""
    value: object

    def _collect_columns(self, out: List[str]) -> None:
        pass

    def __str__(self) -> str:
        return repr(self.value)


_ARITH_OPS: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_COMPARE_OPS: Dict[str, Callable] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_NEGATED = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic: + - * /."""
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _ARITH_OPS:
            raise ExecutionError(f"unknown arithmetic operator {self.op!r}")

    def _collect_columns(self, out: List[str]) -> None:
        self.left._collect_columns(out)
        self.right._collect_columns(out)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Comparison(Expr):
    """Binary comparison: = != < <= > >=."""
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _COMPARE_OPS:
            raise ExecutionError(f"unknown comparison operator {self.op!r}")

    def _collect_columns(self, out: List[str]) -> None:
        self.left._collect_columns(out)
        self.right._collect_columns(out)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Between(Expr):
    """SQL BETWEEN: low <= subject <= high, all inclusive."""
    subject: Expr
    low: Expr
    high: Expr

    def _collect_columns(self, out: List[str]) -> None:
        self.subject._collect_columns(out)
        self.low._collect_columns(out)
        self.high._collect_columns(out)

    def __str__(self) -> str:
        return f"({self.subject} BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class InList(Expr):
    """SQL IN over a literal value list."""
    subject: Expr
    values: Tuple[object, ...]

    def _collect_columns(self, out: List[str]) -> None:
        self.subject._collect_columns(out)

    def __str__(self) -> str:
        return f"({self.subject} IN {self.values})"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction of two or more predicates."""
    operands: Tuple[Expr, ...]

    def _collect_columns(self, out: List[str]) -> None:
        for op in self.operands:
            op._collect_columns(out)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of two or more predicates."""
    operands: Tuple[Expr, ...]

    def _collect_columns(self, out: List[str]) -> None:
        for op in self.operands:
            op._collect_columns(out)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""
    operand: Expr

    def _collect_columns(self, out: List[str]) -> None:
        self.operand._collect_columns(out)

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


def make_and(operands: Sequence[Expr]) -> Optional[Expr]:
    """AND together expressions, flattening; None for an empty list."""
    flat: List[Expr] = []
    for op in operands:
        if op is None:
            continue
        if isinstance(op, And):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Split an expression into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expr] = []
        for op in expr.operands:
            out.extend(conjuncts(op))
        return out
    return [expr]


# --------------------------------------------------------------- row mode
def eval_row(expr: Expr, row: Sequence[object], positions: Dict[str, int]) -> object:
    """Evaluate an expression against one row tuple.

    ``positions`` maps column names to tuple positions. Comparisons with
    NULL evaluate to False (SQL not-true).
    """
    if isinstance(expr, ColumnRef):
        try:
            return row[positions[expr.name]]
        except KeyError:
            raise ExecutionError(f"unknown column {expr.name!r}") from None
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Arithmetic):
        left = eval_row(expr.left, row, positions)
        right = eval_row(expr.right, row, positions)
        if left is None or right is None:
            return None
        return _ARITH_OPS[expr.op](left, right)
    if isinstance(expr, Comparison):
        left = eval_row(expr.left, row, positions)
        right = eval_row(expr.right, row, positions)
        if left is None or right is None:
            return False
        return bool(_COMPARE_OPS[expr.op](left, right))
    if isinstance(expr, Between):
        value = eval_row(expr.subject, row, positions)
        low = eval_row(expr.low, row, positions)
        high = eval_row(expr.high, row, positions)
        if value is None or low is None or high is None:
            return False
        return low <= value <= high
    if isinstance(expr, InList):
        value = eval_row(expr.subject, row, positions)
        if value is None:
            return False
        return value in expr.values
    if isinstance(expr, And):
        return all(eval_row(op, row, positions) for op in expr.operands)
    if isinstance(expr, Or):
        return any(eval_row(op, row, positions) for op in expr.operands)
    if isinstance(expr, Not):
        return not eval_row(expr.operand, row, positions)
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def compile_row_predicate(
    expr: Optional[Expr], positions: Dict[str, int]
) -> Callable[[Sequence[object]], bool]:
    """Return a fast row -> bool callable for a (possibly None) predicate."""
    if expr is None:
        return lambda row: True
    return lambda row: bool(eval_row(expr, row, positions))


# -------------------------------------------------------------- batch mode
def eval_batch(expr: Expr, batch: Batch, ctx=None) -> np.ndarray:
    """Vectorized evaluation: returns a value array or boolean mask.

    ``ctx`` (an :class:`~repro.engine.metrics.ExecutionContext`, optional)
    only receives code-path hit/fallback counters — evaluation itself is
    identical with or without it.

    Dictionary-coded columns evaluate on codes where possible: a
    comparison/BETWEEN/IN between an encoded column and literals
    translates the literals to code space once per segment dictionary
    and runs vectorized over ``int32`` codes. Anything else materializes
    the encoded operand and follows the decoded path (counted as a
    fallback).
    """
    if isinstance(expr, ColumnRef):
        return batch.column(expr.name)
    if isinstance(expr, Literal):
        return np.full(len(batch), expr.value)
    if isinstance(expr, Arithmetic):
        left = _materialized(eval_batch(expr.left, batch, ctx), ctx,
                             expr, "arithmetic")
        right = _materialized(eval_batch(expr.right, batch, ctx), ctx,
                              expr, "arithmetic")
        return _ARITH_OPS[expr.op](left, right)
    if isinstance(expr, Comparison):
        if isinstance(expr.right, Literal):
            subject = eval_batch(expr.left, batch, ctx)
            if isinstance(subject, EncodedColumn):
                note_code_hit(ctx)
                return compare_codes(expr.op, subject, expr.right.value)
            return _compare_arrays(expr.op, subject,
                                   np.full(len(batch), expr.right.value))
        if isinstance(expr.left, Literal):
            subject = eval_batch(expr.right, batch, ctx)
            if isinstance(subject, EncodedColumn):
                note_code_hit(ctx)
                return compare_codes(_FLIPPED[expr.op], subject,
                                     expr.left.value)
            return _compare_arrays(expr.op, np.full(len(batch), expr.left.value),
                                   subject)
        left = _materialized(eval_batch(expr.left, batch, ctx), ctx,
                             expr, "non-literal comparison")
        right = _materialized(eval_batch(expr.right, batch, ctx), ctx,
                              expr, "non-literal comparison")
        return _compare_arrays(expr.op, left, right)
    if isinstance(expr, Between):
        value = eval_batch(expr.subject, batch, ctx)
        if (isinstance(value, EncodedColumn)
                and isinstance(expr.low, Literal)
                and isinstance(expr.high, Literal)):
            note_code_hit(ctx)
            return between_codes(value, expr.low.value, expr.high.value)
        value = _materialized(value, ctx, expr, "non-literal BETWEEN bounds")
        low = _materialized(eval_batch(expr.low, batch, ctx), ctx,
                            expr, "non-literal BETWEEN bounds")
        high = _materialized(eval_batch(expr.high, batch, ctx), ctx,
                             expr, "non-literal BETWEEN bounds")
        return _compare_arrays("<=", low, value) & _compare_arrays("<=", value, high)
    if isinstance(expr, InList):
        value = eval_batch(expr.subject, batch, ctx)
        if isinstance(value, EncodedColumn):
            note_code_hit(ctx)
            return isin_codes(value, expr.values)
        if value.dtype == object:
            allowed = set(expr.values)
            return np.fromiter((v in allowed for v in value), dtype=bool,
                               count=len(value))
        return np.isin(value, np.array(list(expr.values)))
    if isinstance(expr, And):
        mask = eval_batch(expr.operands[0], batch, ctx)
        for op in expr.operands[1:]:
            mask = mask & eval_batch(op, batch, ctx)
        return mask
    if isinstance(expr, Or):
        mask = eval_batch(expr.operands[0], batch, ctx)
        for op in expr.operands[1:]:
            mask = mask | eval_batch(op, batch, ctx)
        return mask
    if isinstance(expr, Not):
        return ~eval_batch(expr.operand, batch, ctx)
    raise ExecutionError(f"cannot evaluate {type(expr).__name__} in batch mode")


def _materialized(values, ctx, expr=None, why: str = ""):
    """Decode an encoded operand for a path without code support.

    ``expr``/``why`` describe which predicate forced the fallback; the
    attribution lands on the active operator span so EXPLAIN ANALYZE can
    name the expression instead of silently bumping a counter.
    """
    if isinstance(values, EncodedColumn):
        reason = f"{why}: {expr}" if expr is not None else None
        note_code_fallback(ctx, reason=reason)
        return values.materialize()
    return values


def _compare_arrays(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Comparison that treats object-array NULLs as not-true."""
    left_obj = getattr(left, "dtype", None) == object
    right_obj = getattr(right, "dtype", None) == object
    if left_obj or right_obj:
        compare = _COMPARE_OPS[op]
        n = len(left) if hasattr(left, "__len__") else len(right)
        out = np.zeros(n, dtype=bool)
        for i in range(n):
            lv = left[i] if hasattr(left, "__len__") else left
            rv = right[i] if hasattr(right, "__len__") else right
            if lv is None or rv is None:
                continue
            out[i] = compare(lv, rv)
        return out
    return _COMPARE_OPS[op](left, right)


# ------------------------------------------------------ predicate analysis
@dataclass
class ColumnRange:
    """A sargable interval derived from predicates on a single column."""

    low: object = None
    high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    def intersect_low(self, value: object, inclusive: bool) -> None:
        """Tighten the lower bound with another predicate's bound."""
        if self.low is None or value > self.low or (
                value == self.low and not inclusive):
            self.low = value
            self.low_inclusive = inclusive

    def intersect_high(self, value: object, inclusive: bool) -> None:
        """Tighten the upper bound with another predicate's bound."""
        if self.high is None or value < self.high or (
                value == self.high and not inclusive):
            self.high = value
            self.high_inclusive = inclusive

    @property
    def is_point(self) -> bool:
        """True when the range pins exactly one value."""
        return (self.low is not None and self.low == self.high
                and self.low_inclusive and self.high_inclusive)

    def as_bounds(self) -> Tuple[object, object]:
        """The range as a plain (low, high) tuple."""
        return self.low, self.high


def extract_column_ranges(expr: Optional[Expr]) -> Dict[str, ColumnRange]:
    """Derive per-column sargable ranges from the AND-ed conjuncts.

    Only simple ``column <op> literal`` conjuncts (and BETWEEN/IN with a
    single value) contribute; everything else is ignored — it will be
    applied as a residual filter. These ranges drive B+ tree seeks and
    columnstore segment elimination.
    """
    ranges: Dict[str, ColumnRange] = {}
    for conj in conjuncts(expr):
        _absorb_conjunct(conj, ranges)
    return ranges


def _absorb_conjunct(conj: Expr, ranges: Dict[str, ColumnRange]) -> None:
    if isinstance(conj, Between) and isinstance(conj.subject, ColumnRef):
        if isinstance(conj.low, Literal) and isinstance(conj.high, Literal):
            column_range = ranges.setdefault(conj.subject.name, ColumnRange())
            column_range.intersect_low(conj.low.value, True)
            column_range.intersect_high(conj.high.value, True)
        return
    if not isinstance(conj, Comparison):
        return
    left, right, op = conj.left, conj.right, conj.op
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = _FLIPPED[op]
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return
    if right.value is None:
        return
    if op == "!=":
        return  # not sargable
    column_range = ranges.setdefault(left.name, ColumnRange())
    value = right.value
    if op == "=":
        column_range.intersect_low(value, True)
        column_range.intersect_high(value, True)
    elif op == "<":
        column_range.intersect_high(value, False)
    elif op == "<=":
        column_range.intersect_high(value, True)
    elif op == ">":
        column_range.intersect_low(value, False)
    elif op == ">=":
        column_range.intersect_low(value, True)


def elimination_ranges(
    expr: Optional[Expr],
) -> Dict[str, Tuple[object, object]]:
    """Column -> (low, high) bounds for columnstore segment elimination."""
    return {
        name: column_range.as_bounds()
        for name, column_range in extract_column_ranges(expr).items()
    }
