"""Sort operator with memory-grant accounting and spill.

Figure 3 of the paper contrasts plans that must sort (CSI scan + sort, or
B+ tree on the filter column + sort) with plans that exploit B+ tree sort
order (no sort at all, near-zero query memory). Figure 4's disk-based
aggregation behaviour comes from the same grant/spill machinery shared
with the hash aggregate.

The sort is a blocking operator: it drains its child, reserves workspace
memory for the materialized input, and — when the memory grant is
insufficient — charges an external-merge-sort spill (write + re-read of
the input) plus extra CPU, while still producing exact results.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import math

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch, concat_batches
from repro.engine.metrics import ExecutionContext
from repro.engine.operators.base import PhysicalOperator


class SortKey:
    """One ORDER BY term: a column name and direction."""

    __slots__ = ("column", "descending")

    def __init__(self, column: str, descending: bool = False):
        self.column = column
        self.descending = descending

    def __repr__(self) -> str:
        return f"{self.column} {'DESC' if self.descending else 'ASC'}"


class Sort(PhysicalOperator):
    """Full sort of the child's output by one or more keys."""

    def __init__(self, child: PhysicalOperator, keys: Sequence[SortKey],
                 dop: int = 1):
        super().__init__(children=(child,), dop=dop)
        if not keys:
            raise ExecutionError("Sort needs at least one key")
        self.keys = list(keys)
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.child().output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        if any(k.descending for k in self.keys):
            return []
        return [k.column for k in self.keys]

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        merged = concat_batches(self.child().execute(ctx))
        if merged is None:
            return
        n = len(merged)
        payload = merged.payload_bytes()
        in_memory = ctx.acquire_memory(payload)
        try:
            if not in_memory:
                # External merge sort: the whole input is written to tempdb
                # run files and read back during the merge.
                ctx.charge_spill(payload)
            cm = ctx.cost_model
            sort_cost = (n * max(1.0, math.log2(max(n, 2)))
                         * cm.sort_cpu_ms_per_row_log)
            if not in_memory:
                sort_cost *= cm.spill_cpu_multiplier
            ctx.charge_parallel_cpu(sort_cost, self.dop)

            order = self._argsort(merged)
            result = merged.take(order)
        finally:
            # The grant must be returned even when sorting raises or the
            # generator is closed before exhaustion.
            if in_memory:
                ctx.release_memory(payload)
        yield result

    def _argsort(self, batch: Batch) -> np.ndarray:
        # np.lexsort uses the last key as primary: feed keys reversed.
        arrays = []
        for key in reversed(self.keys):
            values = batch.column(key.column)
            values = _sortable_array(values)
            if key.descending:
                values = _descending_view(values)
            arrays.append(values)
        return np.lexsort(arrays)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return f"Sort({self.keys}) [{self.mode}, dop={self.dop}]"


def _sortable_array(values: np.ndarray) -> np.ndarray:
    """Object arrays (strings, NULLs) sort via rank codes; NULLs first."""
    if values.dtype != object:
        return values
    keyed = [(v is not None, v) for v in values]
    order = sorted(range(len(keyed)), key=lambda i: keyed[i])
    ranks = np.empty(len(values), dtype=np.int64)
    rank = 0
    previous = None
    for position, i in enumerate(order):
        if position > 0 and keyed[i] != previous:
            rank += 1
        ranks[i] = rank
        previous = keyed[i]
    return ranks


def _descending_view(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind in ("i", "u"):
        return -values.astype(np.int64)
    if values.dtype.kind == "f":
        return -values
    # Rank codes from _sortable_array are ints, so this covers objects too.
    return -values.astype(np.int64)
