"""Sort operator with memory-grant accounting and spill.

Figure 3 of the paper contrasts plans that must sort (CSI scan + sort, or
B+ tree on the filter column + sort) with plans that exploit B+ tree sort
order (no sort at all, near-zero query memory). Figure 4's disk-based
aggregation behaviour comes from the same grant/spill machinery shared
with the hash aggregate.

The sort is a blocking operator: it drains its child, reserves workspace
memory for the materialized input, and — when the memory grant is
insufficient — charges an external-merge-sort spill (write + re-read of
the input) plus extra CPU, while still producing exact results.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import math

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch, concat_batches
from repro.engine.encoded import EncodedColumn, note_code_hit
from repro.engine.metrics import ExecutionContext
from repro.engine.operators.base import PhysicalOperator


class SortKey:
    """One ORDER BY term: a column name and direction."""

    __slots__ = ("column", "descending")

    def __init__(self, column: str, descending: bool = False):
        self.column = column
        self.descending = descending

    def __repr__(self) -> str:
        return f"{self.column} {'DESC' if self.descending else 'ASC'}"


class Sort(PhysicalOperator):
    """Full sort of the child's output by one or more keys.

    Sorting happens in *code space* whenever a key column arrives
    encoded: the per-segment dictionaries are sorted ascending with NULL
    first, and ``concat_batches`` preserves that invariant when it
    merges dictionaries across rowgroups, so ordering by the int32 codes
    produces exactly the permutation the decoded rank path computes
    (equal value iff equal code, and ``np.lexsort`` is stable either
    way). That is the code-space sort legality rule: dictionary sort
    order must equal value order — which :meth:`Dictionary.build` and
    the derived numeric code spaces guarantee by construction.

    ``limit`` (set by the materializer when a TOP sits directly above)
    enables the TOP-N fast path: a single encoded key selects the first
    ``limit`` rows with ``argpartition`` over a (code, row-index)
    composite instead of fully sorting, yielding the same rows in the
    same order as the full stable sort. Modeled costs are charged for
    the full sort either way — the fast path changes wall-clock only.
    """

    def __init__(self, child: PhysicalOperator, keys: Sequence[SortKey],
                 dop: int = 1, limit: Optional[int] = None):
        super().__init__(children=(child,), dop=dop)
        if not keys:
            raise ExecutionError("Sort needs at least one key")
        self.keys = list(keys)
        self.mode = child.mode
        self.limit = limit

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.child().output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        if any(k.descending for k in self.keys):
            return []
        return [k.column for k in self.keys]

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        merged = concat_batches(self.child().execute(ctx))
        if merged is None:
            return
        n = len(merged)
        payload = merged.payload_bytes()
        in_memory = ctx.acquire_memory(payload)
        try:
            if not in_memory:
                # External merge sort: the whole input is written to tempdb
                # run files and read back during the merge.
                ctx.charge_spill(payload)
            cm = ctx.cost_model
            sort_cost = (n * max(1.0, math.log2(max(n, 2)))
                         * cm.sort_cpu_ms_per_row_log)
            if not in_memory:
                sort_cost *= cm.spill_cpu_multiplier
            ctx.charge_parallel_cpu(sort_cost, self.dop)

            order = self._argsort(merged, ctx)
            result = merged.take(order)
        finally:
            # The grant must be returned even when sorting raises or the
            # generator is closed before exhaustion.
            if in_memory:
                ctx.release_memory(payload)
        yield result

    def _argsort(self, batch: Batch, ctx: Optional[ExecutionContext] = None
                 ) -> np.ndarray:
        top_n = self._top_n_order(batch, ctx)
        if top_n is not None:
            return top_n
        # np.lexsort uses the last key as primary: feed keys reversed.
        arrays = []
        for key in reversed(self.keys):
            values = batch.column(key.column)
            if isinstance(values, EncodedColumn):
                # Code-space sort: dictionary order == value order, so
                # the int32 codes are already rank keys (NULL first).
                note_code_hit(ctx)
                values = values.codes
            else:
                values = _sortable_array(values)
            if key.descending:
                values = _descending_view(values)
            arrays.append(values)
        return np.lexsort(arrays)

    def _top_n_order(self, batch: Batch,
                     ctx: Optional[ExecutionContext]) -> Optional[np.ndarray]:
        """TOP-N selection for a single encoded key: ``argpartition`` on
        a (code, row-index) int64 composite. The row index makes the
        composite unique, so the selected prefix and its order equal the
        full stable sort's — ties resolve to input order in both paths.
        """
        if self.limit is None or len(self.keys) != 1:
            return None
        n = len(batch)
        if self.limit >= n:
            return None
        values = batch.column(self.keys[0].column)
        if not isinstance(values, EncodedColumn):
            return None
        note_code_hit(ctx)
        codes = values.codes.astype(np.int64)
        if self.keys[0].descending:
            codes = -codes
        composite = codes * n + np.arange(n, dtype=np.int64)
        prefix = np.argpartition(composite, self.limit - 1)[:self.limit]
        return prefix[np.argsort(composite[prefix])]

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        limit = f", top={self.limit}" if self.limit is not None else ""
        return f"Sort({self.keys}{limit}) [{self.mode}, dop={self.dop}]"


def _sortable_array(values: np.ndarray) -> np.ndarray:
    """Object arrays (strings, NULLs) sort via rank codes; NULLs first."""
    if values.dtype != object:
        return values
    keyed = [(v is not None, v) for v in values]
    order = sorted(range(len(keyed)), key=lambda i: keyed[i])
    ranks = np.empty(len(values), dtype=np.int64)
    rank = 0
    previous = None
    for position, i in enumerate(order):
        if position > 0 and keyed[i] != previous:
            rank += 1
        ranks[i] = rank
        previous = keyed[i]
    return ranks


def _descending_view(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind in ("i", "u"):
        return -values.astype(np.int64)
    if values.dtype.kind == "f":
        return -values
    # Rank codes from _sortable_array are ints, so this covers objects too.
    return -values.astype(np.int64)
