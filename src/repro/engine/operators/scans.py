"""Leaf operators: heap scans, B+ tree seeks/scans, RID lookups, and
columnstore scans.

These are the access paths the optimizer chooses among, and the leaves
counted in Figure 10's plan-composition analysis. Every scan records a
``leaf_access`` metric tagged with the index kind it reads.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch, rows_to_batch
from repro.engine.expressions import (
    ColumnRange,
    Expr,
    compile_row_predicate,
    eval_batch,
)
from repro.engine.metrics import ExecutionContext
from repro.engine.operators.base import (
    BATCH_MODE,
    DEFAULT_BATCH_ROWS,
    PhysicalOperator,
    ROW_MODE,
)
from repro.storage.btree import PrimaryBTreeIndex, SecondaryBTreeIndex
from repro.storage.columnstore import RID_COLUMN, ColumnstoreIndex
from repro.storage.heap import HeapFile
from repro.storage.table import Table


def _qualify(prefix: str, names: Sequence[str]) -> List[str]:
    return [prefix + name for name in names]


def compose_prefix_bounds(ranges: Sequence[ColumnRange]):
    """Build composite-key seek bounds from per-column ranges.

    ``ranges`` aligns with the index's leading key columns; every entry
    but the last must be a point (equality), the last may be a range —
    the classic composite-key sargability rule. Returns
    (low_tuple, high_tuple, low_inclusive, high_inclusive) with ``None``
    for open bounds.
    """
    if not ranges:
        return None, None, True, True
    for column_range in ranges[:-1]:
        if not column_range.is_point:
            raise ExecutionError(
                "only the last seek column may be a non-point range")
    points = [r.low for r in ranges[:-1]]
    final = ranges[-1]
    low_inclusive = high_inclusive = True
    if final.low is not None:
        low = tuple(points) + (final.low,)
        low_inclusive = final.low_inclusive
    elif points:
        low = tuple(points)
    else:
        low = None
    if final.high is not None:
        high = tuple(points) + (final.high,)
        high_inclusive = final.high_inclusive
    elif points:
        high = tuple(points)
    else:
        high = None
    return low, high, low_inclusive, high_inclusive


class _ScanBase(PhysicalOperator):
    """Shared bits for leaf scans: output naming and residual filters."""

    def __init__(
        self,
        table: Table,
        columns: Sequence[str],
        residual: Optional[Expr] = None,
        prefix: str = "",
        dop: int = 1,
    ):
        super().__init__(children=(), dop=dop)
        self.table = table
        self.columns = list(columns)
        self.residual = residual
        self.prefix = prefix
        self._ordinals = table.schema.ordinals(self.columns)

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return _qualify(self.prefix, self.columns)

    def _rows_to_output_batch(self, rows: List[Tuple[object, ...]]) -> Optional[Batch]:
        return rows_to_batch(rows, self.output_columns)

    def _residual_positions(self) -> Dict[str, int]:
        # Residual predicates reference qualified output names.
        return {name: i for i, name in enumerate(self.output_columns)}


class HeapScan(_ScanBase):
    """Full scan of a heap file (row mode)."""

    mode = ROW_MODE

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        heap = self.table.primary
        if not isinstance(heap, HeapFile):
            raise ExecutionError(f"{self.table.name} primary is not a heap")
        ctx.charge_parallel_startup(self.dop)
        predicate = compile_row_predicate(self.residual, self._residual_positions())
        pending: List[Tuple[object, ...]] = []
        scanned = 0
        for _, row in heap.scan(ctx):
            scanned += 1
            projected = tuple(row[i] for i in self._ordinals)
            if predicate(projected):
                pending.append(projected)
            if len(pending) >= DEFAULT_BATCH_ROWS:
                batch = self._rows_to_output_batch(pending)
                if batch is not None:
                    yield batch
                pending = []
        self.charge_rows(ctx, scanned)
        ctx.metrics.record_leaf_access("heap")
        batch = self._rows_to_output_batch(pending)
        if batch is not None:
            yield batch

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"HeapScan({self.table.name}) cols={self.columns} "
                f"[{self.mode}, dop={self.dop}]")


class BTreeSeek(_ScanBase):
    """Range seek (or full ordered scan) on the clustered B+ tree.

    ``key_range`` bounds the leading key column; ``None`` means a full
    scan of the leaf chain. Output is ordered by the index key columns.
    """

    mode = ROW_MODE

    def __init__(
        self,
        table: Table,
        columns: Sequence[str],
        key_range: Optional[ColumnRange] = None,
        key_ranges: Optional[Sequence[ColumnRange]] = None,
        residual: Optional[Expr] = None,
        prefix: str = "",
        dop: int = 1,
    ):
        super().__init__(table, columns, residual, prefix, dop)
        if not isinstance(table.primary, PrimaryBTreeIndex):
            raise ExecutionError(
                f"{table.name} primary is not a clustered B+ tree")
        self.index: PrimaryBTreeIndex = table.primary
        if key_ranges is None and key_range is not None:
            key_ranges = [key_range]
        self.key_ranges = list(key_ranges) if key_ranges else None
        self.key_range = self.key_ranges[0] if self.key_ranges else None

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        return _qualify(self.prefix, self.index.key_columns)

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        low, high, low_inc, high_inc = (
            compose_prefix_bounds(self.key_ranges) if self.key_ranges
            else (None, None, True, True))
        ctx.charge_parallel_startup(self.dop)
        predicate = compile_row_predicate(self.residual, self._residual_positions())
        pending: List[Tuple[object, ...]] = []
        scanned = 0
        for _, row in self.index.seek_range(
                low, high, ctx, low_inclusive=low_inc, high_inclusive=high_inc):
            scanned += 1
            projected = tuple(row[i] for i in self._ordinals)
            if predicate(projected):
                pending.append(projected)
            if len(pending) >= DEFAULT_BATCH_ROWS:
                batch = self._rows_to_output_batch(pending)
                if batch is not None:
                    yield batch
                pending = []
        self.charge_rows(ctx, scanned)
        ctx.metrics.record_leaf_access("btree")
        batch = self._rows_to_output_batch(pending)
        if batch is not None:
            yield batch

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        bounds = "full" if self.key_range is None else (
            f"[{self.key_range.low}..{self.key_range.high}]")
        return (f"BTreeSeek({self.table.name}.{self.index.name} {bounds}) "
                f"cols={self.columns} [{self.mode}, dop={self.dop}]")


class SecondaryBTreeSeek(_ScanBase):
    """Seek on a nonclustered B+ tree, with RID lookups for non-covered
    columns (the classic bookmark-lookup plan whose random I/O makes
    secondary seeks expensive at high selectivity)."""

    mode = ROW_MODE

    def __init__(
        self,
        table: Table,
        index: SecondaryBTreeIndex,
        columns: Sequence[str],
        key_range: Optional[ColumnRange] = None,
        key_ranges: Optional[Sequence[ColumnRange]] = None,
        residual: Optional[Expr] = None,
        prefix: str = "",
        dop: int = 1,
    ):
        super().__init__(table, columns, residual, prefix, dop)
        self.index = index
        if key_ranges is None and key_range is not None:
            key_ranges = [key_range]
        self.key_ranges = list(key_ranges) if key_ranges else None
        self.key_range = self.key_ranges[0] if self.key_ranges else None
        covered = set(index.covered_columns)
        self.lookup_columns = [c for c in self.columns if c not in covered]
        self.needs_lookup = bool(self.lookup_columns)
        self._covered_pos = {
            name: i for i, name in enumerate(index.covered_columns)
        }
        self._lookup_ordinals = table.schema.ordinals(self.lookup_columns)

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        return _qualify(self.prefix, self.index.key_columns)

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        low, high, low_inc, high_inc = (
            compose_prefix_bounds(self.key_ranges) if self.key_ranges
            else (None, None, True, True))
        ctx.charge_parallel_startup(self.dop)
        predicate = compile_row_predicate(self.residual, self._residual_positions())
        pending: List[Tuple[object, ...]] = []
        scanned = 0
        for rid, covered_values in self.index.seek_range(
                low, high, ctx, low_inclusive=low_inc, high_inclusive=high_inc):
            scanned += 1
            if self.needs_lookup:
                fetched = self.table.fetch_columns(rid, self._lookup_ordinals, ctx)
                lookup = dict(zip(self.lookup_columns, fetched))
            else:
                lookup = {}
            projected = tuple(
                covered_values[self._covered_pos[c]] if c in self._covered_pos
                else lookup[c]
                for c in self.columns
            )
            if predicate(projected):
                pending.append(projected)
            if len(pending) >= DEFAULT_BATCH_ROWS:
                batch = self._rows_to_output_batch(pending)
                if batch is not None:
                    yield batch
                pending = []
        self.charge_rows(ctx, scanned, weight=2.0 if self.needs_lookup else 1.0)
        ctx.metrics.record_leaf_access("btree")
        batch = self._rows_to_output_batch(pending)
        if batch is not None:
            yield batch

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        bounds = "full" if self.key_range is None else (
            f"[{self.key_range.low}..{self.key_range.high}]")
        lookup = " +lookup" if self.needs_lookup else ""
        return (f"SecondaryBTreeSeek({self.table.name}.{self.index.name} "
                f"{bounds}){lookup} cols={self.columns} "
                f"[{self.mode}, dop={self.dop}]")


class ColumnstoreScan(_ScanBase):
    """Batch-mode scan of a columnstore index with predicate pushdown.

    Pushes sargable ranges into segment elimination and applies the full
    predicate vectorized over each decoded batch.
    """

    mode = BATCH_MODE

    def __init__(
        self,
        table: Table,
        index: ColumnstoreIndex,
        columns: Sequence[str],
        pushdown_ranges: Optional[Dict[str, Tuple[object, object]]] = None,
        residual: Optional[Expr] = None,
        prefix: str = "",
        dop: int = 1,
        include_rids: bool = False,
    ):
        super().__init__(table, columns, residual, prefix, dop)
        self.index = index
        self.pushdown_ranges = pushdown_ranges or {}
        self.include_rids = include_rids
        #: Bare column names the scan must decode: projected + filtered.
        filter_columns = residual.columns() if residual is not None else []
        bare_filter = [c[len(prefix):] if c.startswith(prefix) else c
                       for c in filter_columns]
        self._read_columns = list(dict.fromkeys(list(columns) + bare_filter))

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        names = _qualify(self.prefix, self.columns)
        if self.include_rids:
            names.append(RID_COLUMN)
        return names

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches.

        With a morsel pool on the context, the rowgroup reads fan out
        across the pool's workers (rowgroup-granular morsels, see
        :mod:`repro.server.parallel_scan`); worker metric deltas are
        absorbed into this context while the scan's span is active, so
        span-sum == statement-totals holds and modeled costs are
        byte-identical to the serial path.
        """
        ctx.charge_parallel_startup(self.dop)
        pool = ctx.morsel_pool
        if pool is not None and pool.eligible(self.index):
            from repro.server.parallel_scan import morsel_scan
            raw_batches = morsel_scan(self, ctx, pool)
        else:
            raw_batches = self.index.scan(
                self._read_columns, ctx,
                elimination_ranges=self.pushdown_ranges or None,
                include_rids=self.include_rids)
        total = 0
        for raw in raw_batches:
            total += len(raw)
            batch = self._postprocess_raw(raw, ctx)
            if batch is not None:
                yield batch
        self.charge_rows(ctx, total)
        ctx.metrics.record_leaf_access("csi")

    def _postprocess_raw(self, raw: Batch,
                         ctx: ExecutionContext) -> Optional[Batch]:
        """Qualify names, apply the residual, and project one raw batch
        from the index scan; None when the residual filters it empty."""
        output_names = _qualify(self.prefix, self._read_columns)
        renamed = {}
        for bare, qualified in zip(self._read_columns, output_names):
            renamed[qualified] = raw.column(bare)
        if self.include_rids:
            renamed[RID_COLUMN] = raw.column(RID_COLUMN)
        batch = Batch(renamed)
        if self.residual is not None:
            mask = eval_batch(self.residual, batch, ctx)
            batch = batch.filter(mask)
        if len(batch) == 0:
            return None
        return batch.project(self.output_columns)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        push = f" push={sorted(self.pushdown_ranges)}" if self.pushdown_ranges else ""
        return (f"ColumnstoreScan({self.table.name}.{self.index.name})"
                f"{push} cols={self.columns} [{self.mode}, dop={self.dop}]")


class RidLookup(PhysicalOperator):
    """Fetch extra columns from the base table for each input RID.

    Used when a columnstore scan feeds a plan that needs columns the CSI
    does not store, or by UPDATE/DELETE plans locating target rows.
    """

    mode = ROW_MODE

    def __init__(self, child: PhysicalOperator, table: Table,
                 columns: Sequence[str], prefix: str = "", dop: int = 1):
        super().__init__(children=(child,), dop=dop)
        self.table = table
        self.columns = list(columns)
        self.prefix = prefix
        self._ordinals = table.schema.ordinals(self.columns)

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.child().output_columns + _qualify(self.prefix, self.columns)

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        new_names = _qualify(self.prefix, self.columns)
        for batch in self.child().execute(ctx):
            rids = batch.column(RID_COLUMN)
            # One batched fetch per input batch (one charge call instead
            # of one per rid) — bookmark-lookup plans stop paying Python
            # call overhead per row.
            fetched_rows = self.table.fetch_columns_batch(
                rids.tolist(), self._ordinals, ctx)
            self.charge_rows(ctx, len(batch))
            columns = dict(batch.columns)
            extra = rows_to_batch(fetched_rows, new_names)
            if extra is not None:
                for name in new_names:
                    columns[name] = extra.column(name)
                yield Batch(columns)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"RidLookup({self.table.name}) cols={self.columns} "
                f"[{self.mode}, dop={self.dop}]")


