"""Physical operator base class and shared helpers.

All operators exchange :class:`~repro.engine.batch.Batch` objects, but each
declares an execution **mode**:

* ``row`` — row-at-a-time processing, charged at
  ``CostModel.row_cpu_ms_per_row`` (B+ tree plans);
* ``batch`` — vectorized processing, charged at
  ``CostModel.batch_cpu_ms_per_row`` (columnstore plans).

This mirrors SQL Server's row mode vs batch mode split that the paper
identifies as a key source of the columnstore's scan advantage.

Operators also carry a ``dop`` (degree of parallelism) assigned by the
optimizer; per-row CPU is charged through
:meth:`ExecutionContext.charge_parallel_cpu`, which splits elapsed time
across workers while inflating total CPU — reproducing the Figure 1
behaviour where the serial→parallel switch drops elapsed time but raises
CPU time.
"""

from __future__ import annotations

import functools

from typing import Iterator, List, Optional, Sequence

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch
from repro.engine.metrics import ExecutionContext

ROW_MODE = "row"
BATCH_MODE = "batch"

#: Target batch size when pivoting row streams into batches.
DEFAULT_BATCH_ROWS = 4096


def _instrument_execute(raw):
    """Wrap an operator's ``execute`` generator with span accounting.

    The wrapper opens one :class:`~repro.engine.metrics.OperatorSpan` per
    execution and keeps it pushed exactly while the operator's own body
    (or a child pull made from it) runs, so every ``charge_*`` call lands
    on the innermost active operator. It also counts actual rows and
    batches produced. Attribution is observation-only: the charges
    themselves are untouched, so statement totals are byte-identical.
    """

    @functools.wraps(raw)
    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        span = ctx.begin_operator_span(self)
        gen = raw(self, ctx)
        try:
            while True:
                ctx.push_span(span)
                try:
                    batch = next(gen)
                except StopIteration:
                    break
                finally:
                    ctx.pop_span(span)
                span.rows_out += len(batch)
                span.batches_out += 1
                yield batch
        finally:
            # Close the inner generator under this span so cleanup work
            # (e.g. releasing memory grants) is attributed to it, whether
            # we finished normally, raised, or were closed early.
            ctx.push_span(span)
            try:
                gen.close()
            finally:
                ctx.pop_span(span)
                ctx.finish_operator_span(span)

    execute._span_instrumented = True
    return execute


class PhysicalOperator:
    """Base class: a node in a physical plan tree."""

    mode: str = ROW_MODE

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        raw = cls.__dict__.get("execute")
        if raw is not None and not getattr(raw, "_span_instrumented", False):
            cls.execute = _instrument_execute(raw)

    def __init__(self, children: Sequence["PhysicalOperator"] = (), dop: int = 1):
        self.children: List[PhysicalOperator] = list(children)
        self.dop = max(1, dop)

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns this operator produces, in order."""
        raise NotImplementedError

    @property
    def output_ordering(self) -> List[str]:
        """Columns the output is sorted by (prefix order); [] if unsorted."""
        return []

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        raise NotImplementedError

    # ------------------------------------------------------------ costing
    def charge_rows(self, ctx: ExecutionContext, n_rows: int,
                    weight: float = 1.0) -> None:
        """Charge per-row processing CPU for ``n_rows`` at this operator's
        mode and degree of parallelism."""
        if n_rows <= 0:
            return
        cm = ctx.cost_model
        per_row = (cm.batch_cpu_ms_per_row if self.mode == BATCH_MODE
                   else cm.row_cpu_ms_per_row)
        ctx.charge_parallel_cpu(n_rows * per_row * weight, self.dop)

    # ------------------------------------------------------------ plumbing
    def child(self, i: int = 0) -> "PhysicalOperator":
        """The i-th child operator (ExecutionError when missing)."""
        try:
            return self.children[i]
        except IndexError:
            raise ExecutionError(
                f"{type(self).__name__} has no child {i}"
            ) from None

    def walk(self) -> Iterator["PhysicalOperator"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def explain(self, indent: int = 0) -> str:
        """Readable plan tree, used by examples and Figure 10 analysis."""
        line = " " * indent + self.describe()
        parts = [line]
        for child in self.children:
            parts.append(child.explain(indent + 2))
        return "\n".join(parts)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return f"{type(self).__name__} [{self.mode} mode, dop={self.dop}]"

    def __repr__(self) -> str:
        return self.describe()


def require_columns(available: Sequence[str], needed: Sequence[str],
                    where: str) -> None:
    """Raise ExecutionError unless every needed column is available."""
    missing = [c for c in needed if c not in available]
    if missing:
        raise ExecutionError(f"{where}: missing columns {missing} "
                             f"(available: {list(available)})")
