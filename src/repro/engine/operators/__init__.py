"""Physical operators for the repro execution engine."""

from repro.engine.operators.base import (
    BATCH_MODE,
    ROW_MODE,
    PhysicalOperator,
)
from repro.engine.operators.scans import (
    BTreeSeek,
    ColumnstoreScan,
    HeapScan,
    RidLookup,
    SecondaryBTreeSeek,
)
from repro.engine.operators.filters import Filter, Project, Top
from repro.engine.operators.sorts import Sort, SortKey
from repro.engine.operators.aggregates import (
    AggregateSpec,
    HashAggregate,
    StreamAggregate,
)
from repro.engine.operators.joins import (
    HashJoin,
    IndexNestedLoopJoin,
    MergeJoin,
)

__all__ = [
    "BATCH_MODE",
    "ROW_MODE",
    "PhysicalOperator",
    "BTreeSeek",
    "ColumnstoreScan",
    "HeapScan",
    "RidLookup",
    "SecondaryBTreeSeek",
    "Filter",
    "Project",
    "Top",
    "Sort",
    "SortKey",
    "AggregateSpec",
    "HashAggregate",
    "StreamAggregate",
    "HashJoin",
    "IndexNestedLoopJoin",
    "MergeJoin",
]
