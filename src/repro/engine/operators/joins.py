"""Join operators: hash join, merge join, and index nested-loop join.

The hybrid plans in Section 5.3 of the paper combine exactly these:
selective B+ tree seeks on dimensions feeding *nested loop* lookups into
fact-table B+ trees, versus columnstore scans joined with *hash joins*.
The merge join exploits B+ tree sort order on both inputs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch, batch_to_rows, rows_to_batch
from repro.engine.encoded import (
    EncodedColumn,
    note_code_fallback,
    note_code_hit,
)
from repro.engine.expressions import ColumnRange, Expr, compile_row_predicate
from repro.engine.metrics import ExecutionContext
from repro.engine.operators.base import BATCH_MODE, PhysicalOperator, ROW_MODE
from repro.storage.btree import PrimaryBTreeIndex, SecondaryBTreeIndex
from repro.storage.table import Table

Row = Tuple[object, ...]


def _key_getter(names: Sequence[str], available: Sequence[str]):
    positions = [list(available).index(n) for n in names]
    if len(positions) == 1:
        p = positions[0]
        return lambda row: row[p]
    return lambda row: tuple(row[p] for p in positions)


class HashJoin(PhysicalOperator):
    """Equality hash join; build side is the first child.

    Runs in batch mode when the probe side is batch mode (SQL Server's
    batch-mode hash join over columnstores). Build-side memory is
    reserved against the grant; overflow charges a Grace-hash spill of
    both sides.
    """

    def __init__(
        self,
        build: PhysicalOperator,
        probe: PhysicalOperator,
        build_keys: Sequence[str],
        probe_keys: Sequence[str],
        dop: int = 1,
    ):
        super().__init__(children=(build, probe), dop=dop)
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise ExecutionError("hash join needs matching non-empty key lists")
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)
        self.mode = probe.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.child(0).output_columns + self.child(1).output_columns

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        cm = ctx.cost_model
        build_cols = self.child(0).output_columns
        probe_cols = self.child(1).output_columns
        build_key = _key_getter(self.build_keys, build_cols)
        probe_key = _key_getter(self.probe_keys, probe_cols)

        table: Dict[object, List[Row]] = {}
        build_bytes = 0
        spilled = False
        build_rows = 0
        # The build-side grant must be returned on every exit path — a
        # probe-side error or an early close (e.g. a Top above this join
        # stops pulling) previously leaked the whole reservation.
        try:
            for batch in self.child(0).execute(ctx):
                build_rows += len(batch)
                payload = batch.payload_bytes() + len(batch) * cm.hash_entry_overhead_bytes
                if not spilled and not ctx.acquire_memory(payload):
                    spilled = True
                if spilled:
                    ctx.charge_spill(payload)
                else:
                    build_bytes += payload
                for row in batch_to_rows(batch, build_cols):
                    table.setdefault(build_key(row), []).append(row)
            ctx.charge_parallel_cpu(build_rows * cm.hash_cpu_ms_per_row, self.dop)
            yield from self._probe(ctx, cm, table, probe_cols, probe_key,
                                   spilled)
        finally:
            if build_bytes:
                ctx.release_memory(build_bytes)

    def _probe(self, ctx: ExecutionContext, cm, table, probe_cols,
               probe_key, spilled: bool) -> Iterator[Batch]:
        out_names = self.output_columns
        pending: List[Row] = []
        for batch in self.child(1).execute(ctx):
            probe_cost = len(batch) * cm.hash_cpu_ms_per_row
            if self.mode == BATCH_MODE:
                probe_cost *= cm.batch_cpu_ms_per_row / cm.row_cpu_ms_per_row
            if spilled:
                probe_cost *= cm.spill_cpu_multiplier
                ctx.charge_spill(batch.payload_bytes())
            ctx.charge_parallel_cpu(probe_cost, self.dop)
            code_matches = self._translate_probe_dictionary(batch, table, ctx)
            if code_matches is not None:
                match_lists, codes = code_matches
                keep = np.flatnonzero(
                    np.fromiter((match_lists[c] is not None for c in codes),
                                dtype=bool, count=len(codes)))
                if len(keep) == 0:
                    continue
                # Late materialization: only rows with a build match pivot
                # into tuples; the key strings themselves never re-hash.
                surviving = batch.take(keep)
                for i, row in zip(keep.tolist(),
                                  batch_to_rows(surviving, probe_cols)):
                    for build_row in match_lists[codes[i]]:
                        pending.append(build_row + row)
                    if len(pending) >= 4096:
                        result = rows_to_batch(pending, out_names)
                        if result is not None:
                            yield result
                        pending = []
                continue
            for row in batch_to_rows(batch, probe_cols):
                matches = table.get(probe_key(row))
                if not matches:
                    continue
                for build_row in matches:
                    pending.append(build_row + row)
                if len(pending) >= 4096:
                    result = rows_to_batch(pending, out_names)
                    if result is not None:
                        yield result
                    pending = []
        result = rows_to_batch(pending, out_names)
        if result is not None:
            yield result

    def _translate_probe_dictionary(self, batch: Batch, table, ctx):
        """Code-space probe for a dictionary-coded single join key.

        Translates the probe batch's dictionary to build-side match
        lists once (at most ``|dictionary|`` hash lookups — covering the
        shared-dictionary case for free, since the translation is pure
        array indexing either way), then probes by code: no per-row
        string hashing and no materialization of non-matching rows.
        Returns (match list per code, per-row codes), or None when the
        key is not a single encoded column (decoded fallback).
        """
        if len(self.probe_keys) != 1:
            if any(isinstance(batch.columns.get(k), EncodedColumn)
                   for k in self.probe_keys):
                note_code_fallback(
                    ctx, reason=("hash join: multi-column probe key "
                                 f"{self.probe_keys}"))
            return None
        column = batch.columns.get(self.probe_keys[0])
        if not isinstance(column, EncodedColumn):
            return None
        note_code_hit(ctx)
        match_lists = [table.get(value)
                       for value in column.dictionary.values.tolist()]
        return match_lists, column.codes

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"HashJoin({self.build_keys} = {self.probe_keys}) "
                f"[{self.mode}, dop={self.dop}]")


class MergeJoin(PhysicalOperator):
    """Equality merge join over two inputs sorted on their join keys.

    Verifies the children's declared orderings; needs no hash table and
    (for unique build keys) no materialization beyond the current group —
    the low-memory join enabled by B+ tree sort order.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        dop: int = 1,
    ):
        super().__init__(children=(left, right), dop=dop)
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ExecutionError("merge join needs matching non-empty key lists")
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.mode = ROW_MODE
        for child, keys in ((left, left_keys), (right, right_keys)):
            ordering = child.output_ordering
            if list(ordering[:len(keys)]) != list(keys):
                raise ExecutionError(
                    f"merge join input must be sorted by {list(keys)}, "
                    f"got {ordering}")

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.child(0).output_columns + self.child(1).output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        return self.left_keys

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        left_cols = self.child(0).output_columns
        right_cols = self.child(1).output_columns
        left_key = _key_getter(self.left_keys, left_cols)
        right_key = _key_getter(self.right_keys, right_cols)
        left_rows = self._drain(self.child(0), ctx, left_cols)
        right_rows = self._drain(self.child(1), ctx, right_cols)
        self.charge_rows(ctx, len(left_rows) + len(right_rows))

        out_names = self.output_columns
        pending: List[Row] = []
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            lk = left_key(left_rows[i])
            rk = right_key(right_rows[j])
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # Gather the full duplicate group on both sides.
                i_end = i
                while i_end < len(left_rows) and left_key(left_rows[i_end]) == lk:
                    i_end += 1
                j_end = j
                while j_end < len(right_rows) and right_key(right_rows[j_end]) == rk:
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        pending.append(left_rows[li] + right_rows[rj])
                i, j = i_end, j_end
            if len(pending) >= 4096:
                result = rows_to_batch(pending, out_names)
                if result is not None:
                    yield result
                pending = []
        result = rows_to_batch(pending, out_names)
        if result is not None:
            yield result

    @staticmethod
    def _drain(child: PhysicalOperator, ctx: ExecutionContext,
               names: Sequence[str]) -> List[Row]:
        rows: List[Row] = []
        for batch in child.execute(ctx):
            rows.extend(batch_to_rows(batch, names))
        return rows

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"MergeJoin({self.left_keys} = {self.right_keys}) "
                f"[{self.mode}, dop={self.dop}]")


class IndexNestedLoopJoin(PhysicalOperator):
    """For each outer row, seek a B+ tree on the inner table.

    The inner side is a parameterized equality seek on ``inner_index``
    whose leading key columns are matched against ``outer_keys``. This is
    the hybrid-plan workhorse of Section 5.3: selective dimension filters
    drive index seeks into large fact tables.
    """

    mode = ROW_MODE

    def __init__(
        self,
        outer: PhysicalOperator,
        inner_table: Table,
        inner_index,
        outer_keys: Sequence[str],
        inner_columns: Sequence[str],
        inner_prefix: str = "",
        residual: Optional[Expr] = None,
        dop: int = 1,
    ):
        super().__init__(children=(outer,), dop=dop)
        if not outer_keys:
            raise ExecutionError("nested loop join needs outer key columns")
        if len(outer_keys) > len(inner_index.key_columns):
            raise ExecutionError("more outer keys than inner index key columns")
        self.inner_table = inner_table
        self.inner_index = inner_index
        self.outer_keys = list(outer_keys)
        self.inner_columns = list(inner_columns)
        self.inner_prefix = inner_prefix
        self.residual = residual
        self._inner_ordinals = inner_table.schema.ordinals(self.inner_columns)
        self._is_secondary = isinstance(inner_index, SecondaryBTreeIndex)
        if self._is_secondary:
            covered = set(inner_index.covered_columns)
            self._lookup_columns = [
                c for c in self.inner_columns if c not in covered]
            self._lookup_ordinals = inner_table.schema.ordinals(
                self._lookup_columns)
            self._covered_pos = {
                name: i for i, name in enumerate(inner_index.covered_columns)}
        elif not isinstance(inner_index, PrimaryBTreeIndex):
            raise ExecutionError("inner index must be a B+ tree")

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        inner = [self.inner_prefix + c for c in self.inner_columns]
        return self.child(0).output_columns + inner

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        return self.child(0).output_ordering

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        outer_cols = self.child(0).output_columns
        outer_key = _key_getter(self.outer_keys, outer_cols)
        single = len(self.outer_keys) == 1
        out_names = self.output_columns
        positions = {name: i for i, name in enumerate(out_names)}
        predicate = compile_row_predicate(self.residual, positions)
        pending: List[Row] = []
        for batch in self.child(0).execute(ctx):
            self.charge_rows(ctx, len(batch))
            for row in batch_to_rows(batch, outer_cols):
                key = outer_key(row)
                bounds = (key,) if single else tuple(key)
                for inner_values in self._seek_inner(bounds, ctx):
                    combined = row + inner_values
                    if predicate(combined):
                        pending.append(combined)
                if len(pending) >= 4096:
                    result = rows_to_batch(pending, out_names)
                    if result is not None:
                        yield result
                    pending = []
        result = rows_to_batch(pending, out_names)
        if result is not None:
            yield result
        ctx.metrics.record_leaf_access("btree")

    def _seek_inner(self, bounds: Tuple[object, ...],
                    ctx: ExecutionContext) -> Iterator[Row]:
        if self._is_secondary:
            for rid, covered_values in self.inner_index.seek_range(
                    bounds, bounds, ctx):
                if self._lookup_columns:
                    fetched = self.inner_table.fetch_columns(
                        rid, self._lookup_ordinals, ctx)
                    lookup = dict(zip(self._lookup_columns, fetched))
                else:
                    lookup = {}
                yield tuple(
                    covered_values[self._covered_pos[c]]
                    if c in self._covered_pos else lookup[c]
                    for c in self.inner_columns
                )
        else:
            for _, row in self.inner_index.seek_range(bounds, bounds, ctx):
                yield tuple(row[i] for i in self._inner_ordinals)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"IndexNestedLoopJoin(outer {self.outer_keys} -> "
                f"{self.inner_table.name}.{self.inner_index.name}) "
                f"[{self.mode}, dop={self.dop}]")
