"""Aggregation operators: hash aggregate (with spill) and streaming
aggregate (exploiting input sort order).

These two implementations are the heart of the paper's Figure 4: with
enough working memory the vectorized hash aggregate over a columnstore
scan wins by ~5x, but when the number of groups pushes the hash table
past the memory grant the hash aggregate goes *disk-based* (spills), and
a B+ tree whose sort order enables the O(1)-memory streaming aggregate
wins by up to ~5x instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch, _object_column_bytes, rows_to_batch
from repro.engine.encoded import (
    EncodedColumn,
    maybe_materialize,
    note_code_fallback,
    note_code_hit,
)
from repro.engine.expressions import Expr, eval_batch
from repro.engine.metrics import ExecutionContext
from repro.engine.operators.base import BATCH_MODE, PhysicalOperator

AGG_FUNCS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: function, argument expression, output name.

    ``expr`` may be None only for ``count`` (COUNT(*)).
    """

    func: str
    expr: Optional[Expr]
    output: str

    def __post_init__(self):
        if self.func not in AGG_FUNCS:
            raise ExecutionError(f"unknown aggregate function {self.func!r}")
        if self.expr is None and self.func != "count":
            raise ExecutionError(f"{self.func} requires an argument")


class _GroupState:
    """Accumulator for one group across batches."""

    __slots__ = ("sums", "counts", "mins", "maxs", "total")

    def __init__(self, n_aggs: int):
        self.sums = [0.0] * n_aggs
        self.counts = [0] * n_aggs
        self.mins: List[object] = [None] * n_aggs
        self.maxs: List[object] = [None] * n_aggs
        self.total = 0


def _finalize(spec: AggregateSpec, state: _GroupState, i: int) -> object:
    if spec.func == "sum":
        return state.sums[i] if state.counts[i] else None
    if spec.func == "count":
        return state.total if spec.expr is None else state.counts[i]
    if spec.func == "avg":
        return state.sums[i] / state.counts[i] if state.counts[i] else None
    if spec.func == "min":
        return state.mins[i]
    if spec.func == "max":
        return state.maxs[i]
    raise ExecutionError(f"unknown aggregate {spec.func!r}")


class _AggregateBase(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, group_by: Sequence[str],
                 aggregates: Sequence[AggregateSpec], dop: int = 1):
        super().__init__(children=(child,), dop=dop)
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        if not self.aggregates and not self.group_by:
            raise ExecutionError("aggregate needs group keys or aggregates")

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.group_by + [a.output for a in self.aggregates]

    def _update_state(self, state: _GroupState,
                      arg_values: List[Optional[np.ndarray]],
                      indices: np.ndarray,
                      ctx: Optional[ExecutionContext] = None) -> None:
        """Fold the rows selected by ``indices`` into ``state``."""
        state.total += len(indices)
        for i, values in enumerate(arg_values):
            if values is None:
                continue
            if isinstance(values, EncodedColumn):
                if self._update_from_codes(state, i, values, indices, ctx):
                    continue
                note_code_fallback(
                    ctx, reason=f"aggregate {self.aggregates[i].func}"
                                f"({self.aggregates[i].output}) on "
                                "non-integer domain")
                # Materialize to the *decoded* representation: a numeric
                # dictionary decodes to a numeric array, so float sums
                # use the same pairwise numpy summation as the decoded
                # twin (sequential Python summation rounds differently).
                selected = maybe_materialize(values[indices])
            else:
                selected = values[indices]
            if selected.dtype == object:
                selected = np.array(
                    [v for v in selected if v is not None], dtype=object)
                if len(selected) == 0:
                    continue
                state.counts[i] += len(selected)
                spec = self.aggregates[i]
                if spec.func in ("sum", "avg"):
                    state.sums[i] += float(sum(selected))
                lo, hi = min(selected), max(selected)
            else:
                state.counts[i] += len(selected)
                state.sums[i] += float(selected.sum())
                lo = selected.min().item()
                hi = selected.max().item()
            if state.mins[i] is None or lo < state.mins[i]:
                state.mins[i] = lo
            if state.maxs[i] is None or hi > state.maxs[i]:
                state.maxs[i] = hi

    def _update_from_codes(self, state: _GroupState, i: int,
                           column: EncodedColumn, indices: np.ndarray,
                           ctx: Optional[ExecutionContext]) -> bool:
        """Fold an encoded argument into ``state`` purely in code space.

        min/max reduce over codes (the dictionary is sorted, so the
        extreme code is the extreme value) and decode one value each;
        count needs only the non-null code count; sum/avg use a bincount
        over codes dotted with the integer dictionary domain. Exactness
        rules keep both modes bit-identical: integer numeric
        dictionaries accumulate in int64 exactly like the decoded twin's
        ``selected.sum()``; all-integer object dictionaries accumulate
        in arbitrary-precision Python exactly like the decoded twin's
        ``sum()`` loop; float domains return False and materialize.
        """
        spec = self.aggregates[i]
        dictionary = column.dictionary
        needs_sum = spec.func in ("sum", "avg")
        domain = dictionary.integer_domain() if needs_sum else None
        if needs_sum and domain is None:
            return False
        codes = column.codes[indices]
        null_offset = dictionary.null_offset
        if null_offset:
            codes = codes[codes >= null_offset]
        note_code_hit(ctx)
        if len(codes) == 0:
            return True  # all NULL: nothing to fold, like the decoded path
        state.counts[i] += len(codes)
        if needs_sum:
            counts = np.bincount(
                codes - null_offset,
                minlength=len(dictionary.values) - null_offset)
            if isinstance(domain, np.ndarray):
                state.sums[i] += float(np.dot(counts, domain))
            else:
                state.sums[i] += float(sum(
                    value * int(count)
                    for value, count in zip(domain, counts.tolist())
                    if count))
        # mins/maxs track unconditionally, mirroring the decoded branches.
        lo = dictionary.values[int(codes.min())]
        hi = dictionary.values[int(codes.max())]
        if isinstance(lo, np.generic):
            lo = lo.item()
        if isinstance(hi, np.generic):
            hi = hi.item()
        if state.mins[i] is None or lo < state.mins[i]:
            state.mins[i] = lo
        if state.maxs[i] is None or hi > state.maxs[i]:
            state.maxs[i] = hi
        return True

    def _arg_arrays(self, batch: Batch,
                    ctx: Optional[ExecutionContext] = None
                    ) -> List[Optional[np.ndarray]]:
        return [
            eval_batch(spec.expr, batch, ctx) if spec.expr is not None else None
            for spec in self.aggregates
        ]

    def _emit(self, groups: Dict[Tuple[object, ...], _GroupState]
              ) -> Optional[Batch]:
        rows = []
        for key, state in groups.items():
            out = list(key)
            for i, spec in enumerate(self.aggregates):
                out.append(_finalize(spec, state, i))
            rows.append(tuple(out))
        rows.sort(key=lambda r: tuple(
            (v is not None, v) for v in r[:len(self.group_by)]))
        return rows_to_batch(rows, self.output_columns)


class HashAggregate(_AggregateBase):
    """Hash-based aggregation with memory-grant accounting.

    The hash table's footprint grows with the number of distinct groups;
    once it exceeds the context's memory grant the operator switches to
    disk-based aggregation — it charges spill I/O for the rows processed
    after the switch and inflates their CPU — while still computing exact
    results in this simulation.
    """

    def __init__(self, child: PhysicalOperator, group_by: Sequence[str],
                 aggregates: Sequence[AggregateSpec], dop: int = 1):
        super().__init__(child, group_by, aggregates, dop)
        self.mode = child.mode
        self.spilled = False
        #: Real bytes a spill file would hold for the post-spill batches:
        #: encoded columns serialize their int32 codes (the shared
        #: dictionary lives in the segment, not the spill run), plain
        #: columns their materialized width. The *modeled* spill charge
        #: (``charge_spill``) always uses the decoded payload so figure
        #: metrics are mode-independent; these counters surface how much
        #: smaller the code-space spill actually is (EXPLAIN ANALYZE).
        self.spill_bytes_written = 0
        self.spill_bytes_decoded = 0

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        cm = ctx.cost_model
        entry_bytes = (
            len(self.group_by) * 16 + len(self.aggregates) * 24
            + cm.hash_entry_overhead_bytes
        )
        groups: Dict[Tuple[object, ...], _GroupState] = {}
        reserved = 0
        self.spilled = False
        self.spill_bytes_written = 0
        self.spill_bytes_decoded = 0
        n_aggs = len(self.aggregates)
        # The hash-table grant must be returned even when the child (or
        # an aggregate expression) raises mid-stream.
        try:
            for batch in self.child().execute(ctx):
                self.charge_rows(ctx, len(batch))
                hash_cost = len(batch) * cm.hash_cpu_ms_per_row
                if self.mode == BATCH_MODE:
                    hash_cost *= cm.batch_cpu_ms_per_row / cm.row_cpu_ms_per_row
                if self.spilled:
                    hash_cost *= cm.spill_cpu_multiplier
                    payload = batch.payload_bytes()
                    ctx.charge_spill(payload)
                    self._serialize_spill_run(batch, payload)
                ctx.charge_parallel_cpu(hash_cost, self.dop)

                arg_values = self._arg_arrays(batch, ctx)

                def on_new_group(state_key):
                    nonlocal reserved
                    state = _GroupState(n_aggs)
                    groups[state_key] = state
                    if not self.spilled:
                        if ctx.acquire_memory(entry_bytes):
                            reserved += entry_bytes
                        else:
                            self.spilled = True
                    return state

                if self._fold_batch_vectorized(batch, arg_values, groups,
                                               on_new_group, ctx):
                    continue
                for key, indices in _group_indices(batch, self.group_by, ctx).items():
                    state = groups.get(key)
                    if state is None:
                        state = on_new_group(key)
                    self._update_state(state, arg_values, indices, ctx)
            result = self._emit(groups)
        finally:
            if reserved:
                ctx.release_memory(reserved)
        if result is not None:
            yield result

    #: Ceiling on the (groups x dictionary) bincount matrix the
    #: vectorized fold may allocate per aggregate (int64 cells).
    _VECTOR_FOLD_MAX_CELLS = 1 << 24

    def _fold_batch_vectorized(self, batch: Batch,
                               arg_values: List[Optional[np.ndarray]],
                               groups: Dict[Tuple[object, ...], _GroupState],
                               on_new_group, ctx) -> bool:
        """Fold one batch with per-batch bincounts instead of per-group
        gathers, when every aggregate argument is an ``EncodedColumn``.

        One ``bincount`` over the composite ``group_code * |dict| +
        value_code`` yields the full (group x value) contingency matrix,
        from which counts, int64-exact sums (matrix-vector product with
        the integer dictionary domain — the same int64 arithmetic as the
        per-group ``np.dot``), and code-space min/max all fall out
        without touching row indices. Returns False when any argument is
        ineligible (plain array, float/object-int domain under sum/avg,
        oversized matrix); the caller then runs the per-group path,
        which produces bit-identical state.
        """
        if not self.group_by:
            return False
        specs = []
        for i, values in enumerate(arg_values):
            if values is None:
                continue
            spec = self.aggregates[i]
            if not isinstance(values, EncodedColumn):
                return False
            if spec.func in ("sum", "avg") and not isinstance(
                    values.dictionary.integer_domain(), np.ndarray):
                return False
            specs.append((i, spec, values))
        gcodes, uniques = _factorize(batch, self.group_by, ctx)
        k = len(uniques)
        for _, _, values in specs:
            if k * len(values.dictionary) > self._VECTOR_FOLD_MAX_CELLS:
                return False
        group_counts = np.bincount(gcodes, minlength=k)
        states = []
        for j, key in enumerate(uniques):
            state = groups.get(key)
            if state is None:
                state = on_new_group(key)
            state.total += int(group_counts[j])
            states.append(state)
        for i, spec, values in specs:
            dictionary = values.dictionary
            nv = len(dictionary)
            null_offset = dictionary.null_offset
            combined = gcodes * nv + values.codes
            mat = np.bincount(combined, minlength=k * nv).reshape(k, nv)
            nonnull = mat[:, null_offset:]
            note_code_hit(ctx)
            if nonnull.shape[1] == 0:
                continue  # all-NULL dictionary: nothing to fold
            counts = nonnull.sum(axis=1)
            sums = (nonnull @ dictionary.integer_domain()
                    if spec.func in ("sum", "avg") else None)
            occupied = nonnull > 0
            first = np.argmax(occupied, axis=1)
            last = (nonnull.shape[1] - 1
                    - np.argmax(occupied[:, ::-1], axis=1))
            for j in np.flatnonzero(counts).tolist():
                state = states[j]
                state.counts[i] += int(counts[j])
                if sums is not None:
                    state.sums[i] += float(sums[j])
                lo = dictionary.values[int(first[j]) + null_offset]
                hi = dictionary.values[int(last[j]) + null_offset]
                if isinstance(lo, np.generic):
                    lo = lo.item()
                if isinstance(hi, np.generic):
                    hi = hi.item()
                if state.mins[i] is None or lo < state.mins[i]:
                    state.mins[i] = lo
                if state.maxs[i] is None or hi > state.maxs[i]:
                    state.maxs[i] = hi
        return True

    def _serialize_spill_run(self, batch: Batch, decoded_payload: int) -> None:
        """Account the real size of one post-spill run written in code
        space: encoded columns contribute their int32 code bytes, plain
        columns their materialized width."""
        written = 0
        for arr in batch.columns.values():
            if isinstance(arr, EncodedColumn):
                written += arr.codes.nbytes
            elif arr.dtype == object:
                written += _object_column_bytes(arr, batch.length)
            else:
                written += arr.nbytes
        self.spill_bytes_written += written
        self.spill_bytes_decoded += decoded_payload

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        spill = ""
        if self.spilled:
            spill = " SPILLED"
            if self.spill_bytes_written:
                spill += (f"(wrote {self.spill_bytes_written}B coded"
                          f" of {self.spill_bytes_decoded}B decoded)")
        return (f"HashAggregate(by={self.group_by}, "
                f"aggs={[a.output for a in self.aggregates]}){spill} "
                f"[{self.mode}, dop={self.dop}]")


class StreamAggregate(_AggregateBase):
    """Streaming aggregation over input sorted by the group columns.

    Requires the child's ``output_ordering`` to start with the group-by
    columns. Uses O(1) working memory — the reason B+ tree sort order
    wins when memory is scarce (Figure 4).
    """

    def __init__(self, child: PhysicalOperator, group_by: Sequence[str],
                 aggregates: Sequence[AggregateSpec], dop: int = 1):
        super().__init__(child, group_by, aggregates, dop)
        self.mode = child.mode
        ordering = child.output_ordering
        if group_by and list(ordering[:len(group_by)]) != list(group_by):
            raise ExecutionError(
                f"StreamAggregate needs input sorted by {list(group_by)}, "
                f"child provides {ordering}")

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        cm = ctx.cost_model
        current_key: Optional[Tuple[object, ...]] = None
        state: Optional[_GroupState] = None
        out_rows: List[Tuple[object, ...]] = []
        n_aggs = len(self.aggregates)
        for batch in self.child().execute(ctx):
            ctx.charge_parallel_cpu(
                len(batch) * cm.stream_agg_cpu_ms_per_row, self.dop)
            arg_values = self._arg_arrays(batch, ctx)
            # Group keys arrive in sorted runs: split the batch into runs.
            for key, indices in _ordered_group_runs(batch, self.group_by, ctx):
                if key != current_key:
                    if state is not None:
                        out_rows.append(self._finalize_row(current_key, state))
                    current_key = key
                    state = _GroupState(n_aggs)
                self._update_state(state, arg_values, indices, ctx)
        if state is not None:
            out_rows.append(self._finalize_row(current_key, state))
        result = rows_to_batch(out_rows, self.output_columns)
        if result is not None:
            yield result

    def _finalize_row(self, key: Tuple[object, ...],
                      state: _GroupState) -> Tuple[object, ...]:
        out = list(key)
        for i, spec in enumerate(self.aggregates):
            out.append(_finalize(spec, state, i))
        return tuple(out)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"StreamAggregate(by={self.group_by}, "
                f"aggs={[a.output for a in self.aggregates]}) "
                f"[{self.mode}, dop={self.dop}]")


def _group_indices(batch: Batch, group_by: Sequence[str],
                   ctx: Optional[ExecutionContext] = None
                   ) -> Dict[Tuple[object, ...], np.ndarray]:
    """Map each distinct key tuple to the row indices holding it."""
    if not group_by:
        return {(): np.arange(len(batch))}
    codes, uniques = _factorize(batch, group_by, ctx)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    out: Dict[Tuple[object, ...], np.ndarray] = {}
    for chunk in np.split(order, boundaries):
        key = uniques[int(codes[chunk[0]])]
        out[key] = chunk
    return out


def _ordered_group_runs(batch: Batch, group_by: Sequence[str],
                        ctx: Optional[ExecutionContext] = None):
    """Yield (key, indices) runs in batch order (input already sorted)."""
    if not group_by:
        yield (), np.arange(len(batch))
        return
    codes, uniques = _factorize(batch, group_by, ctx)
    n = len(codes)
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(codes[1:], codes[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], n)
    for start, end in zip(starts, ends):
        yield uniques[int(codes[start])], np.arange(start, end)


def _factorize(batch: Batch, group_by: Sequence[str],
               ctx: Optional[ExecutionContext] = None
               ) -> Tuple[np.ndarray, List[Tuple[object, ...]]]:
    """Encode each row's group key as an integer code.

    Returns (codes per row, unique key tuples indexed by code).

    Dictionary-coded columns contribute their codes directly: the
    dictionary is sorted NULL-first, matching the rank order the decoded
    path assigns, so downstream grouping behaves identically while the
    key strings materialize only for the groups actually emitted.
    """
    per_column_codes = []
    per_column_values = []
    for name in group_by:
        values = batch.column(name)
        if isinstance(values, EncodedColumn):
            note_code_hit(ctx)
            codes = values.codes.astype(np.int64)
            decoded = values.dictionary.values.tolist()
        elif values.dtype == object:
            keyed = [(v is not None, v) for v in values]
            uniques = sorted(set(keyed))
            lookup = {k: i for i, k in enumerate(uniques)}
            codes = np.fromiter((lookup[k] for k in keyed), dtype=np.int64,
                                count=len(keyed))
            decoded = [u[1] for u in uniques]
        else:
            decoded_arr, codes = np.unique(values, return_inverse=True)
            decoded = decoded_arr.tolist()
        per_column_codes.append(codes)
        per_column_values.append(decoded)
    combined = per_column_codes[0].astype(np.int64)
    for codes, values in zip(per_column_codes[1:], per_column_values[1:]):
        combined = combined * len(values) + codes
    unique_combined, final_codes = np.unique(combined, return_inverse=True)
    # Decode each combined code back into the component key tuple.
    uniques: List[Tuple[object, ...]] = []
    for code in unique_combined.tolist():
        parts = []
        for values in reversed(per_column_values[1:]):
            code, part = divmod(code, len(values))
            parts.append(values[part])
        parts.append(per_column_values[0][code])
        uniques.append(tuple(reversed(parts)))
    return final_codes, uniques
