"""Filter, projection/compute, and Top-N operators."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch, batch_to_rows, rows_to_batch
from repro.engine.expressions import Expr, eval_batch, eval_row
from repro.engine.metrics import ExecutionContext
from repro.engine.operators.base import BATCH_MODE, PhysicalOperator, ROW_MODE


class Filter(PhysicalOperator):
    """Apply a predicate; mode follows the child (a filter over a
    columnstore scan stays in batch mode)."""

    def __init__(self, child: PhysicalOperator, predicate: Expr,
                 dop: int = 1):
        super().__init__(children=(child,), dop=dop)
        self.predicate = predicate
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.child().output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        return self.child().output_ordering

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        for batch in self.child().execute(ctx):
            self.charge_rows(ctx, len(batch))
            mask = eval_batch(self.predicate, batch, ctx)
            filtered = batch.filter(mask)
            if len(filtered) > 0:
                yield filtered

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return f"Filter({self.predicate}) [{self.mode}, dop={self.dop}]"


class Project(PhysicalOperator):
    """Compute output expressions (column renames, arithmetic)."""

    def __init__(self, child: PhysicalOperator,
                 outputs: Sequence[Tuple[str, Expr]], dop: int = 1):
        super().__init__(children=(child,), dop=dop)
        if not outputs:
            raise ExecutionError("Project needs at least one output")
        self.outputs = list(outputs)
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return [name for name, _ in self.outputs]

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        for batch in self.child().execute(ctx):
            self.charge_rows(ctx, len(batch))
            columns = {}
            for name, expr in self.outputs:
                values = eval_batch(expr, batch, ctx)
                if np.isscalar(values) or getattr(values, "ndim", 1) == 0:
                    values = np.full(len(batch), values)
                columns[name] = values
            yield Batch(columns)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        names = [name for name, _ in self.outputs]
        return f"Project({names}) [{self.mode}, dop={self.dop}]"


class Top(PhysicalOperator):
    """Return the first ``limit`` rows of the child's stream.

    The optimizer places Top above a Sort (or an ordered scan) so stream
    order is the requested order; Top merely truncates and stops pulling,
    modelling row-goal early termination.
    """

    def __init__(self, child: PhysicalOperator, limit: int, dop: int = 1):
        super().__init__(children=(child,), dop=dop)
        if limit < 0:
            raise ExecutionError("Top limit must be non-negative")
        self.limit = limit
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.child().output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        return self.child().output_ordering

    def execute(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Run the operator, yielding result batches."""
        remaining = self.limit
        if remaining == 0:
            return
        for batch in self.child().execute(ctx):
            if len(batch) >= remaining:
                yield batch.head(remaining)
                return
            remaining -= len(batch)
            yield batch

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return f"Top({self.limit}) [{self.mode}, dop={self.dop}]"
