"""Columnar batch container exchanged by batch-mode operators.

A :class:`Batch` is a set of equal-length column arrays. Columnstore scans
produce batches directly from decoded segments; batch-mode operators
(vectorized filter, hash aggregate, ...) transform them with numpy
primitives, which is what makes batch mode an order of magnitude cheaper
per row than row-at-a-time processing in this engine — mirroring SQL
Server's batch vs row mode distinction.

Row-mode operators exchange plain tuples. :func:`batch_to_rows` and
:func:`rows_to_batch` adapt between the two worlds at mode boundaries
(the paper notes hybrid plans mix both modes, Section 4.5).

A batch column is either a plain numpy array or an
:class:`~repro.engine.encoded.EncodedColumn` (dictionary codes + shared
dictionary, produced by columnstore scans over dict/RLE string
segments). Encoded columns survive filtering/projection untouched and
materialize lazily at :func:`batch_to_rows` — the late-materialization
boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ExecutionError
from repro.engine.encoded import EncodedColumn, concat_encoded

Row = Tuple[object, ...]

#: Rows sampled per object column when estimating payload size.
_PAYLOAD_SAMPLE_ROWS = 16


def _python_value_bytes(value: object) -> int:
    """Rough in-memory footprint of one Python value in an object column."""
    if value is None:
        return 16
    if isinstance(value, str):
        return 49 + len(value)  # CPython compact-str header + payload
    if isinstance(value, bytes):
        return 33 + len(value)
    return 28  # boxed int/float/bool


def _object_column_bytes(column, length: int) -> int:
    """Estimate an object column's payload from a sample of actual value
    sizes (a flat per-value constant badly underestimates wide strings,
    starving memory-grant accounting). Sampling is deterministic (evenly
    spaced rows) so the estimate is identical for an encoded column and
    its decoded twin."""
    if length == 0:
        return 0
    n_samples = min(length, _PAYLOAD_SAMPLE_ROWS)
    step = max(1, length // n_samples)
    positions = range(0, length, step)
    sampled = [_python_value_bytes(column[i]) for i in positions]
    return int(length * (sum(sampled) / len(sampled)))


class Batch:
    """A fixed set of named, equal-length column arrays."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[str, np.ndarray]):
        if not columns:
            raise ExecutionError("batch must have at least one column")
        lengths = {len(arr) for arr in columns.values()}
        if len(lengths) != 1:
            raise ExecutionError(f"ragged batch: column lengths {lengths}")
        self.columns = columns
        self.length = lengths.pop()

    def __len__(self) -> int:
        return self.length

    def column(self, name: str) -> np.ndarray:
        """Values of one result/batch/stats column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(f"batch has no column {name!r}") from None

    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return list(self.columns)

    def filter(self, mask: np.ndarray) -> "Batch":
        """Keep rows where ``mask`` is True."""
        return Batch({name: arr[mask] for name, arr in self.columns.items()})

    def take(self, indices: np.ndarray) -> "Batch":
        """New batch containing the rows at ``indices``, in order."""
        return Batch({name: arr[indices] for name, arr in self.columns.items()})

    def project(self, names: Sequence[str]) -> "Batch":
        """New batch restricted to the named columns."""
        return Batch({name: self.column(name) for name in names})

    def with_column(self, name: str, values: np.ndarray) -> "Batch":
        """New batch with one extra column appended."""
        if len(values) != self.length:
            raise ExecutionError("new column length mismatch")
        columns = dict(self.columns)
        columns[name] = values
        return Batch(columns)

    def head(self, n: int) -> "Batch":
        """New batch with the first ``n`` rows."""
        return Batch({name: arr[:n] for name, arr in self.columns.items()})

    def payload_bytes(self) -> int:
        """Approximate in-memory size, used for memory-grant accounting.

        Object (string) columns are estimated from a deterministic sample
        of actual value sizes; encoded columns sample through their
        dictionary without materializing, so both representations of the
        same data report the same estimate. Numeric encoded columns are
        charged at their decoded numeric width (``length * itemsize``) —
        exactly what the decoded twin's ``arr.nbytes`` reports — because
        grants and spill decisions must not depend on which execution
        mode produced the batch.
        """
        total = 0
        for arr in self.columns.values():
            if isinstance(arr, EncodedColumn) and arr.is_numeric:
                total += self.length * arr.decoded_dtype.itemsize
            elif arr.dtype == object:
                total += _object_column_bytes(arr, self.length)
            else:
                total += arr.nbytes
        return total


def rows_to_batch(rows: Sequence[Row], names: Sequence[str]) -> Optional[Batch]:
    """Pivot row tuples into a columnar batch; None when ``rows`` is empty.

    A single ``zip(*rows)`` transposes all columns in one C-level pass
    instead of one list comprehension over every row per column.
    """
    if not rows:
        return None
    columns: Dict[str, np.ndarray] = {}
    for name, values in zip(names, zip(*rows)):
        columns[name] = _column_array(values)
    return Batch(columns)


def batch_to_rows(batch: Batch, names: Optional[Sequence[str]] = None) -> List[Row]:
    """Pivot a batch into row tuples, preserving order."""
    names = list(names) if names is not None else batch.column_names()
    arrays = [batch.column(name) for name in names]
    # EncodedColumn.tolist() yields Python scalars for numeric
    # dictionaries (not numpy scalars), matching the decoded twin.
    pythonic = [
        arr.tolist()
        if isinstance(arr, EncodedColumn) or arr.dtype != object
        else list(arr)
        for arr in arrays
    ]
    return list(zip(*pythonic))


def _column_array(values: Sequence[object]) -> np.ndarray:
    """Build a numpy array with a sensible dtype for a value list.

    All-integer lists stay int64; mixed int/float lists promote to
    float64 regardless of which kind appears first, so vectorized batch
    ops keep working; anything else (strings, None) becomes an object
    array so mixed/NULL data round-trips safely.
    """
    has_none = any(v is None for v in values)
    if not has_none:
        first = values[0]
        if isinstance(first, (bool, np.bool_)):
            pass  # fall through to object
        elif isinstance(first, (int, float, np.integer, np.floating)):
            # numpy scalars count as numbers too: rows rebuilt from
            # decoded segments carry np.int64 values, and treating them
            # as objects would silently dictionary-encode a numeric
            # column on REBUILD.
            if all(isinstance(v, (int, np.integer))
                   and not isinstance(v, (bool, np.bool_))
                   for v in values):
                return np.array(values, dtype=np.int64)
            if all(isinstance(v, (int, float, np.integer, np.floating))
                   and not isinstance(v, (bool, np.bool_))
                   for v in values):
                return np.array(values, dtype=np.float64)
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


def concat_batches(batches: Iterable[Batch]) -> Optional[Batch]:
    """Concatenate same-schema batches; None when the input is empty."""
    materialized = [b for b in batches if len(b) > 0]
    if not materialized:
        return None
    names = materialized[0].column_names()
    columns: Dict[str, np.ndarray] = {}
    for name in names:
        arrays = [b.column(name) for b in materialized]
        if all(isinstance(a, EncodedColumn) for a in arrays):
            # Encoded runs stay encoded: same-dictionary runs concatenate
            # on codes directly, differing per-segment dictionaries are
            # merged and the codes remapped (see ``concat_encoded``);
            # only unmergeable inputs materialize below.
            encoded = concat_encoded(arrays)
            if encoded is not None:
                columns[name] = encoded
                continue
        # Materialize stragglers first: a numeric encoded column decodes
        # to its numeric dtype, so a mixed encoded/plain numeric column
        # concatenates numerically exactly like the decoded twin.
        arrays = [a.materialize() if isinstance(a, EncodedColumn) else a
                  for a in arrays]
        if any(a.dtype == object for a in arrays):
            # Cast only the arrays that are not already object dtype.
            arrays = [a if a.dtype == object else a.astype(object)
                      for a in arrays]
        columns[name] = np.concatenate(arrays)
    return Batch(columns)


def iter_rows(batches: Iterable[Batch], names: Sequence[str]) -> Iterator[Row]:
    """Iterate (rid, row) pairs in RID order."""
    for batch in batches:
        yield from batch_to_rows(batch, names)
