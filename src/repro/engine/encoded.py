"""Dictionary-coded (late-materialization) column representation.

The columnstore already stores string columns as integer codes into a
sorted per-segment dictionary, but the scan boundary used to throw that
away: every segment was decoded into a numpy *object* array, so filters,
group-bys and joins over strings degraded to per-element Python loops.
:class:`EncodedColumn` keeps the codes: an ``int32`` code array plus a
reference to the shared :class:`~repro.storage.compression.Dictionary`.

Batch-mode consumers operate directly on the codes:

* comparisons / BETWEEN / IN translate their literals to code space once
  per segment dictionary (the dictionary is sorted, so value order and
  code order coincide) and evaluate vectorized on ``int32``;
* hash aggregation groups on codes and materializes the group-key
  strings only for the emitted groups;
* hash joins translate the probe-side dictionary to build-side matches
  once per segment, probing by code instead of hashing strings per row.

Strings materialize lazily — :meth:`EncodedColumn.materialize` — only
for rows that survive filtering, at mode boundaries (``batch_to_rows``)
or in operators without a code path. An ``EncodedColumn`` reports
``dtype == object`` and supports iteration/indexing over the decoded
values, so any consumer without a specialized code path transparently
falls back to decoded semantics (and the fallback is counted in
``QueryMetrics.code_path_fallbacks``).

The encoded path changes *real* wall-clock execution speed only; every
modeled cost charge (the paper's figure metrics) is identical with the
path on or off, which is asserted by the differential test suite.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.compression import Dictionary

#: Process-wide *default* for whether columnstore scans produce
#: :class:`EncodedColumn` values for dictionary-coded segments. On by
#: default. This is only the default: every
#: :class:`~repro.engine.metrics.ExecutionContext` (and therefore every
#: server session) can override it per statement via its
#: ``encoded_execution`` flag, so one session's toggle never leaks into
#: another. Prefer the :func:`encoded_execution` context manager over
#: :func:`set_encoded_execution` so a raising test can't leave the
#: process default flipped.
_ENCODED_EXECUTION = True

#: Dtype used for code arrays carried in batches.
CODE_DTYPE = np.int32


def encoded_execution_enabled() -> bool:
    """Whether scans produce encoded columns by default."""
    return _ENCODED_EXECUTION


def set_encoded_execution(enabled: bool) -> bool:
    """Set the process-wide encoded-execution default; returns the
    previous value (so tests/benchmarks can restore it).

    This mutates *process-global* state: in a multi-session server it
    affects every session whose context carries no per-statement
    override. Sessions should set
    :attr:`~repro.engine.metrics.ExecutionContext.encoded_execution`
    (``Session(encoded_execution=...)``) instead; tests should use the
    :func:`encoded_execution` context manager, which restores the
    previous default even when the body raises.
    """
    global _ENCODED_EXECUTION
    previous = _ENCODED_EXECUTION
    _ENCODED_EXECUTION = bool(enabled)
    return previous


@contextmanager
def encoded_execution(enabled: bool) -> Iterator[None]:
    """Scoped override of the process-wide encoded-execution default::

        with encoded_execution(False):
            ...  # decoded path, restored on exit even on error

    The ``finally`` restore is the point: the bare setter left the
    global flipped whenever a test body failed, leaking the toggle into
    every later test (and, in a server, into every other session).
    """
    previous = set_encoded_execution(enabled)
    try:
        yield
    finally:
        set_encoded_execution(previous)


class EncodedColumn:
    """A dictionary-coded column: ``int32`` codes + a shared dictionary.

    The dictionary's values are sorted (NULL first when present), so the
    code order equals the value order — the property every code-space
    predicate translation relies on. Instances are immutable by
    convention (like batch arrays): filtering produces a new
    ``EncodedColumn`` sharing the same dictionary.
    """

    __slots__ = ("codes", "dictionary", "_materialized")

    #: Encoded columns advertise object dtype: consumers that branch on
    #: ``arr.dtype == object`` treat them exactly like decoded string
    #: arrays, which is what makes the decoded fallback transparent.
    dtype = np.dtype(object)

    def __init__(self, codes: np.ndarray, dictionary: Dictionary):
        if codes.dtype != CODE_DTYPE:
            codes = codes.astype(CODE_DTYPE)
        self.codes = codes
        self.dictionary = dictionary
        self._materialized: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, item):
        """Int index -> decoded value; mask/indices/slice -> a new
        ``EncodedColumn`` over the selected codes (laziness survives
        filtering, which is the point of late materialization)."""
        if isinstance(item, (int, np.integer)):
            value = self.dictionary.values[self.codes[item]]
            # Numeric dictionaries hold numpy scalars; hand out Python
            # scalars so row-mode consumers see the decoded path's types.
            if isinstance(value, np.generic):
                return value.item()
            return value
        return EncodedColumn(self.codes[item], self.dictionary)

    def __iter__(self):
        return iter(self.materialize())

    @property
    def nbytes(self) -> int:
        """Physical in-memory size of the code array."""
        return int(self.codes.nbytes)

    @property
    def stored_bytes(self) -> int:
        """Bytes this column actually occupies while encoded — the int32
        code array. The shared dictionary is owned by the segment, not
        the batch/cache entry, so it is not charged here."""
        return int(self.codes.nbytes)

    @property
    def decoded_dtype(self) -> np.dtype:
        """Dtype :meth:`materialize` would produce (the dictionary's
        value dtype) — ``object`` for string/nullable dictionaries,
        a numeric dtype for derived numeric code spaces."""
        return self.dictionary.values.dtype

    @property
    def is_numeric(self) -> bool:
        """True when the dictionary holds numeric (non-object) values."""
        return self.dictionary.values.dtype != np.dtype(object)

    def materialize(self) -> np.ndarray:
        """Decode into a numpy object array (cached on this instance)."""
        if self._materialized is None:
            self._materialized = self.dictionary.decode(self.codes)
        return self._materialized

    # numpy-compatibility shims used by generic batch plumbing ----------
    def astype(self, dtype) -> np.ndarray:
        """Materialize and cast — used by concat fallbacks."""
        return self.materialize().astype(dtype)

    def tolist(self):
        """Decoded values as a Python list (Python scalars, matching
        what ``batch_to_rows`` yields for the decoded twin column)."""
        materialized = self.materialize()
        if materialized.dtype == object:
            return list(materialized)
        return materialized.tolist()

    def __repr__(self) -> str:
        return (f"EncodedColumn(n={len(self.codes)}, "
                f"dict={len(self.dictionary)})")


def maybe_materialize(values):
    """Return a plain array for ``values``, decoding if encoded."""
    if isinstance(values, EncodedColumn):
        return values.materialize()
    return values


# --------------------------------------------------------- metric helpers
def note_code_hit(ctx, n: int = 1) -> None:
    """Count ``n`` operations that ran on codes without materializing."""
    if ctx is not None:
        ctx.metrics.code_path_hits += n


def note_code_fallback(ctx, n: int = 1, reason: Optional[str] = None) -> None:
    """Count ``n`` operations that had to materialize an encoded column.

    ``reason`` names the operator/predicate that forced materialization
    (e.g. ``"comparison city = region"``). Reasons are tallied on the
    *active operator span* so EXPLAIN ANALYZE can show exactly which
    node and expression fell off the code path — coverage regressions
    become visible in plan output instead of a bare counter bump.
    """
    if ctx is None:
        return
    ctx.metrics.code_path_fallbacks += n
    if reason:
        span = ctx.active_span
        span.fallback_reasons[reason] = span.fallback_reasons.get(reason, 0) + n


# --------------------------------------------- literal -> code translation
def compare_codes(op: str, column: EncodedColumn, literal: object) -> np.ndarray:
    """Vectorized ``column <op> literal`` evaluated purely on codes.

    Matches the decoded path's SQL semantics exactly: any comparison
    involving NULL (a NULL literal, or a NULL value in the column) is
    not-true. The dictionary is sorted with NULL first, so non-null
    codes form a contiguous, value-ordered range starting at
    ``null_offset``; range predicates become code-range tests computed
    with one ``searchsorted`` over the non-null dictionary slice.
    """
    codes = column.codes
    dictionary = column.dictionary
    null_offset = dictionary.null_offset
    if literal is None:
        return np.zeros(len(codes), dtype=bool)
    if op == "=":
        code = dictionary.code_of(literal)
        if code is None or code < null_offset:
            return np.zeros(len(codes), dtype=bool)
        return codes == code
    if op == "!=":
        not_null = codes >= null_offset
        code = dictionary.code_of(literal)
        if code is None or code < null_offset:
            return not_null
        return not_null & (codes != code)
    non_null_values = dictionary.values[null_offset:]
    if op == "<":
        boundary = null_offset + int(
            np.searchsorted(non_null_values, literal, side="left"))
        return (codes >= null_offset) & (codes < boundary)
    if op == "<=":
        boundary = null_offset + int(
            np.searchsorted(non_null_values, literal, side="right"))
        return (codes >= null_offset) & (codes < boundary)
    if op == ">":
        boundary = null_offset + int(
            np.searchsorted(non_null_values, literal, side="right"))
        return codes >= boundary
    if op == ">=":
        boundary = null_offset + int(
            np.searchsorted(non_null_values, literal, side="left"))
        return codes >= boundary
    raise ValueError(f"unknown comparison operator {op!r}")


def between_codes(column: EncodedColumn, low: object, high: object) -> np.ndarray:
    """``low <= column <= high`` on codes (NULL bound -> empty mask)."""
    if low is None or high is None:
        return np.zeros(len(column.codes), dtype=bool)
    return compare_codes(">=", column, low) & compare_codes("<=", column, high)


def isin_codes(column: EncodedColumn, values: Sequence[object]) -> np.ndarray:
    """``column IN values`` on codes.

    Mirrors the decoded path's membership test verbatim — including its
    treatment of an explicit NULL in the value list, which matches NULL
    column values (``v in allowed`` on Python objects).
    """
    allowed = [code for code in (column.dictionary.code_of(v) for v in values)
               if code is not None]
    if not allowed:
        return np.zeros(len(column.codes), dtype=bool)
    return np.isin(column.codes, np.array(allowed, dtype=CODE_DTYPE))


def merge_dictionaries(
    dictionaries: Sequence[Dictionary],
) -> Tuple[Dictionary, List[np.ndarray]]:
    """Merge per-segment dictionaries into one sorted dictionary.

    Returns the merged dictionary and, for each input, an ``int32``
    remap array such that ``remap[old_code] == new_code``. The merged
    value array is sorted ascending with NULL first (when any input has
    one), so the merged code order still equals value order — the
    legality condition for code-space sorting survives concatenation
    across rowgroup boundaries.
    """
    has_null = any(d.null_offset > 0 for d in dictionaries)
    non_null_parts = [d.values[d.null_offset:] for d in dictionaries]
    all_numeric = all(part.dtype != object for part in non_null_parts)
    if all_numeric:
        merged_non_null = np.unique(np.concatenate(non_null_parts))
    else:
        distinct = set()
        for part in non_null_parts:
            distinct.update(part.tolist())
        merged_non_null = np.array(sorted(distinct), dtype=object)
    null_offset = 1 if has_null else 0
    if has_null:
        values = np.empty(len(merged_non_null) + 1, dtype=object)
        values[0] = None
        values[1:] = merged_non_null
    else:
        values = merged_non_null
    merged = Dictionary(values=values)
    remaps: List[np.ndarray] = []
    for d, part in zip(dictionaries, non_null_parts):
        remap = np.empty(len(d.values), dtype=CODE_DTYPE)
        if d.null_offset:
            remap[0] = 0
        if len(part):
            positions = np.searchsorted(merged_non_null, part)
            remap[d.null_offset:] = (
                positions.astype(CODE_DTYPE) + CODE_DTYPE(null_offset))
        remaps.append(remap)
    return merged, remaps


def concat_encoded(columns: Sequence[EncodedColumn]) -> Optional[EncodedColumn]:
    """Concatenate encoded columns without materializing.

    When every column shares one dictionary *instance* (morsels of one
    segment) the codes concatenate directly. Otherwise — the common case
    when a blocking operator concatenates batches from different
    rowgroups, each with its own per-segment dictionary — the
    dictionaries are merged (sorted union, NULL first) and each code
    array is remapped through a per-source translation table. Either
    way the result stays in code space; None is returned only when the
    inputs are too heterogeneous to merge (mixed incomparable value
    types), in which case the caller materializes.
    """
    first = columns[0].dictionary
    if all(col.dictionary is first for col in columns[1:]):
        return EncodedColumn(
            np.concatenate([col.codes for col in columns]), first)
    try:
        merged, remaps = merge_dictionaries(
            [col.dictionary for col in columns])
    except (TypeError, ValueError):
        return None
    new_codes = np.concatenate(
        [remap[col.codes] for col, remap in zip(columns, remaps)])
    return EncodedColumn(new_codes, merged)
