"""Lock manager for the concurrency simulator.

Implements the pieces of SQL Server's locking behaviour the paper's mixed
workload experiments depend on:

* **Lock modes** S and X with the standard compatibility matrix.
* **Granularity**: callers lock abstract *resources* — key-range buckets
  for B+ tree access, row groups for columnstore scans, rows for point
  updates. Columnstores "have very different locking characteristics
  compared to B+ tree indexes" (Section 4.5): a CSI scan's row-group
  locks cover many rows at once, so scans conflict with updates more
  coarsely than B+ tree range locks do.
* **Isolation levels** (Section 5.2.2):

  - ``READ_COMMITTED`` — readers take no long-duration locks (short
    latch-like access, modelled as no blocking); writers hold X to end.
  - ``SNAPSHOT`` — readers never block and never wait, but pay a version
    -chain traversal overhead on reads (the paper's explanation for SI
    being slightly slower than SR for read queries).
  - ``SERIALIZABLE`` — readers hold S range locks to end of statement,
    so they queue behind conflicting writers and vice versa.

Deadlock freedom comes from all-upfront acquisition in sorted resource
order (a simplification that keeps the simulator deterministic).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import TransactionError

LOCK_S = "S"
LOCK_X = "X"

READ_COMMITTED = "read_committed"
SNAPSHOT = "snapshot"
SERIALIZABLE = "serializable"

ISOLATION_LEVELS = (READ_COMMITTED, SNAPSHOT, SERIALIZABLE)

#: Extra CPU multiplier snapshot isolation adds to reads (version chains).
SNAPSHOT_READ_OVERHEAD = 1.05
#: Additive per-read-statement cost of snapshot isolation: traversing
#: version chains for recently-modified rows costs roughly the same
#: absolute work regardless of how efficient the query's plan is, which
#: is why SI hurts *fast* (hybrid) readers proportionally more — the
#: paper's observation that SR yields better latency improvements for
#: read queries than SI (Section 5.2.2).
SNAPSHOT_READ_VERSION_MS = 0.4

Resource = Tuple  # e.g. ("range", "lineitem", "l_shipdate", 9131)


def compatible(held: str, requested: str) -> bool:
    """Lock-mode compatibility: only S/S coexist."""
    return held == LOCK_S and requested == LOCK_S


@dataclass
class _LockState:
    holders: Dict[int, str] = field(default_factory=dict)  # owner -> mode
    #: FIFO queue of (owner, mode) waiting for this resource.
    waiters: List[Tuple[int, str]] = field(default_factory=list)

    def can_grant(self, owner: int, mode: str) -> bool:
        """Whether ``owner`` may take ``mode`` given current holders."""
        for held_owner, held_mode in self.holders.items():
            if held_owner == owner:
                if held_mode == LOCK_X or mode == LOCK_S:
                    return True  # lock upgrade not needed
                return False  # S held, X requested: treat as incompatible
            if not compatible(held_mode, mode):
                return False
        return True


class LockManager:
    """Grants/queues lock requests over abstract resources."""

    def __init__(self) -> None:
        self._locks: Dict[Resource, _LockState] = {}
        #: owner -> resources currently held
        self._held: Dict[int, List[Resource]] = {}

    def try_acquire_all(self, owner: int,
                        requests: Sequence[Tuple[Resource, str]]) -> bool:
        """Try to atomically acquire every requested lock.

        Returns False (acquiring nothing, but queueing the owner on the
        first blocked resource) when any lock is unavailable. FIFO
        fairness: a request also blocks if an earlier waiter is still
        queued on one of its resources.
        """
        ordered = sorted(requests, key=lambda r: r[0])
        for resource, mode in ordered:
            state = self._locks.get(resource)
            if state is None:
                continue
            # FIFO fairness: only waiters queued *ahead* of this owner
            # block it; later arrivals do not.
            earlier_waiters = False
            for w_owner, _ in state.waiters:
                if w_owner == owner:
                    break
                earlier_waiters = True
                break
            if earlier_waiters or not state.can_grant(owner, mode):
                if (owner, mode) not in state.waiters:
                    state.waiters.append((owner, mode))
                return False
        for resource, mode in ordered:
            state = self._locks.setdefault(resource, _LockState())
            state.waiters = [
                (w_owner, w_mode) for w_owner, w_mode in state.waiters
                if w_owner != owner
            ]
            current = state.holders.get(owner)
            if current != LOCK_X:
                state.holders[owner] = mode if current is None else LOCK_X \
                    if LOCK_X in (current, mode) else mode
            self._held.setdefault(owner, []).append(resource)
        return True

    def release_all(self, owner: int) -> Set[int]:
        """Release everything ``owner`` holds; returns the set of owners
        that *might* now be grantable (for the simulator to retry)."""
        woken: Set[int] = set()
        for resource in self._held.pop(owner, []):
            state = self._locks.get(resource)
            if state is None:
                continue
            state.holders.pop(owner, None)
            for w_owner, _ in state.waiters:
                woken.add(w_owner)
            if not state.holders and not state.waiters:
                del self._locks[resource]
        return woken

    def cancel_waits(self, owner: int) -> None:
        """Remove the owner from every wait queue."""
        for state in self._locks.values():
            state.waiters = [
                (w_owner, w_mode) for w_owner, w_mode in state.waiters
                if w_owner != owner
            ]

    def holders_of(self, resource: Resource) -> Dict[int, str]:
        """Current holders (owner -> mode) of one resource."""
        state = self._locks.get(resource)
        return dict(state.holders) if state else {}

    def held_by(self, owner: int) -> List[Resource]:
        """Resources currently held by one owner."""
        return list(self._held.get(owner, []))


def range_bucket(value: object, bucket_width: int = 1) -> int:
    """Map a key value onto a coarse range-lock bucket."""
    if isinstance(value, (int, float)):
        return int(value) // max(1, bucket_width)
    return hash(value) & 0xFFFF


def read_lock_requests(isolation: str, resources: Sequence[Resource]
                       ) -> List[Tuple[Resource, str]]:
    """Lock footprint of a read statement under the given isolation."""
    if isolation not in ISOLATION_LEVELS:
        raise TransactionError(f"unknown isolation level {isolation!r}")
    if isolation in (READ_COMMITTED, SNAPSHOT):
        return []
    return [(resource, LOCK_S) for resource in resources]


def write_lock_requests(resources: Sequence[Resource]
                        ) -> List[Tuple[Resource, str]]:
    """X-mode lock requests for the given resources."""
    return [(resource, LOCK_X) for resource in resources]


def read_cpu_multiplier(isolation: str) -> float:
    """Per-read CPU multiplier for the isolation level."""
    if isolation == SNAPSHOT:
        return SNAPSHOT_READ_OVERHEAD
    return 1.0
