"""Query Store: per-query execution history and aggregates.

The paper's methodology monitors query performance "using the Query
Store" and SQL Server's Dynamic Management Views (Sections 3.1 and
5.2.1: "We use SQL Server's Dynamic Management Views to obtain a query's
CPU time"). This module provides the equivalent observability surface:
attach a :class:`QueryStore` to an :class:`~repro.engine.executor.Executor`
and every executed statement is recorded with its metrics, chosen plan
fingerprint, and per-operator node statistics; aggregates (count,
total/mean CPU, median elapsed, plan changes) are queryable per
statement text.

Bounded in both dimensions: per-statement execution history is capped at
``capacity`` entries, and the set of distinct statements is capped at
``max_statements`` with least-recently-used eviction — an ad-hoc
workload of unique statement texts can no longer grow the store without
bound. Aggregates are *running totals* maintained at record time, so
neither history trimming nor statement eviction silently under-reports
``total_cpu_ms`` / ``top_by_cpu``.

The advisor's workload files can be bootstrapped from a Query Store
capture — exactly how DTA users feed production workloads into tuning.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.metrics import OperatorSpan, QueryMetrics


@dataclass
class QueryExecution:
    """One recorded execution."""

    cpu_ms: float
    elapsed_ms: float
    data_read_mb: float
    rows_returned: int
    plan_fingerprint: str


@dataclass
class PlanNodeStats:
    """Running aggregates for one plan node across executions of one
    (statement, plan fingerprint) pair — the per-operator runtime stats
    SQL Server exposes via ``sys.dm_exec_query_profiles``."""

    op: str
    label: str
    executions: int = 0
    total_rows: float = 0.0
    total_elapsed_ms: float = 0.0
    total_cpu_ms: float = 0.0
    total_data_read_mb: float = 0.0
    total_spilled_bytes: int = 0

    @property
    def mean_rows(self) -> float:
        """Average actual rows produced per execution."""
        return self.total_rows / self.executions if self.executions else 0.0

    @property
    def mean_cpu_ms(self) -> float:
        """Average self CPU per execution."""
        return self.total_cpu_ms / self.executions if self.executions else 0.0

    @property
    def mean_elapsed_ms(self) -> float:
        """Average self elapsed time per execution."""
        return (self.total_elapsed_ms / self.executions
                if self.executions else 0.0)

    def fold(self, node: Dict[str, object]) -> None:
        """Accumulate one execution's node snapshot."""
        self.label = str(node.get("label", self.label))
        self.executions += 1
        self.total_rows += float(node.get("rows", 0))
        self.total_elapsed_ms += float(node.get("elapsed_ms", 0.0))
        self.total_cpu_ms += float(node.get("cpu_ms", 0.0))
        self.total_data_read_mb += float(node.get("data_read_mb", 0.0))
        self.total_spilled_bytes += int(node.get("spilled_bytes", 0))


@dataclass
class QueryStats:
    """Aggregates over all executions of one statement text.

    ``executions`` is the retained history window (bounded by the
    store's ``capacity``); ``recorded`` and the ``total_*`` aggregates
    are lifetime running totals that survive history trimming.
    """

    sql: str
    executions: List[QueryExecution] = field(default_factory=list)
    #: Lifetime execution count (survives history trimming).
    recorded: int = 0
    #: Per-fingerprint per-node runtime stats, in plan pre-order.
    node_stats: Dict[str, List[PlanNodeStats]] = field(default_factory=dict)
    #: Lifetime wait aggregation for this statement text (the Query
    #: Store 2017+ ``wait_stats`` surface): wait_type -> count / wall ms.
    wait_count: Dict[str, int] = field(default_factory=dict)
    wait_time_ms: Dict[str, float] = field(default_factory=dict)
    _total_cpu_ms: float = 0.0
    _total_elapsed_ms: float = 0.0
    _total_data_read_mb: float = 0.0
    _fingerprints: List[str] = field(default_factory=list)

    def record_execution(self, execution: QueryExecution, capacity: int,
                         node_stats: Optional[Sequence[Dict[str, object]]]
                         = None,
                         wait_profile: Optional[Dict[str, Dict[str, float]]]
                         = None) -> None:
        """Fold one execution into the running aggregates and the
        bounded history window."""
        self.executions.append(execution)
        if len(self.executions) > capacity:
            self.executions.pop(0)
        self.recorded += 1
        self._total_cpu_ms += execution.cpu_ms
        self._total_elapsed_ms += execution.elapsed_ms
        self._total_data_read_mb += execution.data_read_mb
        if execution.plan_fingerprint not in self._fingerprints:
            self._fingerprints.append(execution.plan_fingerprint)
        if node_stats:
            self._fold_node_stats(execution.plan_fingerprint, node_stats)
        if wait_profile:
            for wait_type, row in wait_profile.items():
                self.wait_count[wait_type] = (
                    self.wait_count.get(wait_type, 0) + int(row["count"]))
                self.wait_time_ms[wait_type] = (
                    self.wait_time_ms.get(wait_type, 0.0)
                    + float(row["wait_ms"]))

    def _fold_node_stats(self, fingerprint: str,
                         nodes: Sequence[Dict[str, object]]) -> None:
        existing = self.node_stats.get(fingerprint)
        ops = [str(n.get("op", "")) for n in nodes]
        if existing is None or [s.op for s in existing] != ops:
            existing = [PlanNodeStats(op=op, label=op) for op in ops]
            self.node_stats[fingerprint] = existing
        for stats, node in zip(existing, nodes):
            stats.fold(node)

    @property
    def count(self) -> int:
        """Number of executions retained in the history window."""
        return len(self.executions)

    @property
    def total_cpu_ms(self) -> float:
        """Lifetime total CPU time (survives history trimming)."""
        return self._total_cpu_ms

    @property
    def total_elapsed_ms(self) -> float:
        """Lifetime total elapsed time (survives history trimming)."""
        return self._total_elapsed_ms

    @property
    def mean_cpu_ms(self) -> float:
        """Average CPU time per execution, over the lifetime totals."""
        return self._total_cpu_ms / self.recorded if self.recorded else 0.0

    @property
    def median_elapsed_ms(self) -> float:
        """Median elapsed time over the retained history window."""
        if not self.executions:
            return 0.0
        return statistics.median(e.elapsed_ms for e in self.executions)

    @property
    def plan_fingerprints(self) -> List[str]:
        """Distinct plans observed, in first-seen order (plan regressions
        show up as a fingerprint change); survives history trimming."""
        return list(self._fingerprints)

    @property
    def had_plan_change(self) -> bool:
        """True when more than one distinct plan was observed."""
        return len(self._fingerprints) > 1

    # -------------------------------------------------- node-level views
    def node_summary(self, fingerprint: Optional[str] = None
                     ) -> List[PlanNodeStats]:
        """Per-node runtime stats for one plan (default: latest seen)."""
        if fingerprint is None:
            fingerprint = self._fingerprints[-1] if self._fingerprints else ""
        return list(self.node_stats.get(fingerprint, []))

    def plan_change_report(self) -> str:
        """Readable report of every plan seen for this statement, its
        per-operator runtime stats, and — when the plan changed — which
        operators appeared or disappeared between the first and the most
        recent plan."""
        lines = [f"plan history for: {self.sql}"]
        for fingerprint in self._fingerprints:
            lines.append(f"plan: {fingerprint or '<none>'}")
            for node in self.node_stats.get(fingerprint, []):
                lines.append(
                    f"  {node.op:<24s} execs={node.executions:<4d} "
                    f"mean rows={node.mean_rows:10.1f} "
                    f"mean cpu={node.mean_cpu_ms:10.4f} ms "
                    f"mean elapsed={node.mean_elapsed_ms:10.4f} ms")
        if self.had_plan_change:
            before = [s.op for s in
                      self.node_stats.get(self._fingerprints[0], [])]
            after = [s.op for s in
                     self.node_stats.get(self._fingerprints[-1], [])]
            gone = [op for op in before if op not in after]
            new = [op for op in after if op not in before]
            if gone or new:
                lines.append("operator changes: "
                             + ", ".join([f"-{op}" for op in gone]
                                         + [f"+{op}" for op in new]))
        return "\n".join(lines)


class QueryStore:
    """Records executions; query by text or rank by resource usage."""

    def __init__(self, capacity: int = 10_000,
                 max_statements: int = 10_000):
        self.capacity = capacity
        self.max_statements = max_statements
        self._stats: Dict[str, QueryStats] = {}
        self._recorded = 0
        self._evicted_statements = 0
        self._total_cpu_ms = 0.0
        self._total_elapsed_ms = 0.0

    def record(self, sql: str, metrics: QueryMetrics,
               plan_fingerprint: str = "",
               node_stats: Optional[Sequence[Dict[str, object]]] = None,
               wait_profile: Optional[Dict[str, Dict[str, float]]] = None
               ) -> None:
        """Record one execution of ``sql`` (most-recently-used position;
        the least-recently-used statement is evicted past the bound).

        ``wait_profile`` is the statement's per-wait-type blocking
        summary (``{wait_type: {"count": n, "wait_ms": ms}}``) from
        :meth:`repro.storage.waits.WaitStatsCollector.statement`."""
        stats = self._stats.pop(sql, None)
        if stats is None:
            stats = QueryStats(sql=sql)
        self._stats[sql] = stats
        stats.record_execution(QueryExecution(
            cpu_ms=metrics.cpu_ms,
            elapsed_ms=metrics.elapsed_ms,
            data_read_mb=metrics.data_read_mb,
            rows_returned=metrics.rows_returned,
            plan_fingerprint=plan_fingerprint,
        ), self.capacity, node_stats, wait_profile)
        self._recorded += 1
        self._total_cpu_ms += metrics.cpu_ms
        self._total_elapsed_ms += metrics.elapsed_ms
        while len(self._stats) > self.max_statements:
            lru_sql = next(iter(self._stats))
            del self._stats[lru_sql]
            self._evicted_statements += 1

    def __len__(self) -> int:
        return len(self._stats)

    @property
    def recorded_executions(self) -> int:
        """Total executions recorded (across all statements, lifetime)."""
        return self._recorded

    @property
    def total_cpu_ms(self) -> float:
        """Store-wide total CPU, surviving statement eviction."""
        return self._total_cpu_ms

    @property
    def total_elapsed_ms(self) -> float:
        """Store-wide total elapsed time, surviving statement eviction."""
        return self._total_elapsed_ms

    @property
    def evicted_statements(self) -> int:
        """Distinct statements dropped by the LRU bound so far."""
        return self._evicted_statements

    def stats(self, sql: str) -> Optional[QueryStats]:
        """Aggregates for one statement text, or None if never seen (or
        evicted)."""
        return self._stats.get(sql)

    def top_by_cpu(self, n: int = 10) -> List[QueryStats]:
        """The statements consuming the most total CPU — the classic
        "what should I tune?" Query Store view. Ranks by lifetime
        running totals, so trimmed history does not skew the ranking."""
        ordered = sorted(self._stats.values(),
                         key=lambda s: s.total_cpu_ms, reverse=True)
        return ordered[:n]

    def regressed_queries(self) -> List[QueryStats]:
        """Statements whose plan changed between executions (the signal
        SQL Server's Automatic Plan Correction acts on, Section 5.2.1)."""
        return [s for s in self._stats.values() if s.had_plan_change]

    def plan_change_report(self, sql: str) -> str:
        """Per-operator report of how ``sql``'s plans performed; empty
        string when the statement was never recorded."""
        stats = self._stats.get(sql)
        return stats.plan_change_report() if stats is not None else ""

    def as_workload(self, weight_by_frequency: bool = True
                    ) -> List[Tuple[str, float]]:
        """Export (sql, weight) pairs for the tuning advisor, weighting
        each statement by how often it ran (lifetime counts)."""
        out = []
        for stats in self._stats.values():
            weight = float(stats.recorded) if weight_by_frequency else 1.0
            out.append((stats.sql, weight))
        return out

    def clear(self) -> None:
        """Forget all recorded history and running totals."""
        self._stats.clear()
        self._recorded = 0
        self._evicted_statements = 0
        self._total_cpu_ms = 0.0
        self._total_elapsed_ms = 0.0


def plan_fingerprint(planned) -> str:
    """Stable fingerprint of a plan's shape: node kinds + leaf indexes."""
    if planned is None:
        return ""
    parts = []
    for node in planned.root.walk():
        label = type(node).__name__
        descriptor = getattr(node, "descriptor", None)
        if descriptor is not None:
            label += f"[{descriptor.name}]"
        method = getattr(node, "method", None)
        if method:
            label += f"({method})"
        strategy = getattr(node, "strategy", None)
        if strategy:
            label += f"({strategy})"
        parts.append(label)
    return "->".join(parts)


def node_stats_from_span(root_span: Optional[OperatorSpan]
                         ) -> List[Dict[str, object]]:
    """Flatten a statement's span tree into per-node stat snapshots
    (pre-order, statement root included) for :meth:`QueryStore.record`."""
    if root_span is None:
        return []
    out: List[Dict[str, object]] = []
    for span in root_span.walk():
        operator = span.operator
        out.append({
            "op": (type(operator).__name__ if operator is not None
                   else "<statement>"),
            "label": span.label,
            "rows": span.rows_out,
            "elapsed_ms": span.elapsed_ms,
            "cpu_ms": span.cpu_ms,
            "data_read_mb": span.data_read_mb,
            "spilled_bytes": span.spilled_bytes,
            "memory_peak_bytes": span.memory_peak_bytes,
        })
    return out
