"""Query Store: per-query execution history and aggregates.

The paper's methodology monitors query performance "using the Query
Store" and SQL Server's Dynamic Management Views (Sections 3.1 and
5.2.1: "We use SQL Server's Dynamic Management Views to obtain a query's
CPU time"). This module provides the equivalent observability surface:
attach a :class:`QueryStore` to an :class:`~repro.engine.executor.Executor`
and every executed statement is recorded with its metrics and chosen
plan fingerprint; aggregates (count, total/mean CPU, median elapsed,
plan changes) are queryable per statement text.

The advisor's workload files can be bootstrapped from a Query Store
capture — exactly how DTA users feed production workloads into tuning.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.metrics import QueryMetrics


@dataclass
class QueryExecution:
    """One recorded execution."""

    cpu_ms: float
    elapsed_ms: float
    data_read_mb: float
    rows_returned: int
    plan_fingerprint: str


@dataclass
class QueryStats:
    """Aggregates over all executions of one statement text."""

    sql: str
    executions: List[QueryExecution] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Number of recorded executions."""
        return len(self.executions)

    @property
    def total_cpu_ms(self) -> float:
        """Total CPU time across all executions."""
        return sum(e.cpu_ms for e in self.executions)

    @property
    def mean_cpu_ms(self) -> float:
        """Average CPU time per execution."""
        return self.total_cpu_ms / self.count if self.count else 0.0

    @property
    def median_elapsed_ms(self) -> float:
        """Median elapsed time per execution."""
        if not self.executions:
            return 0.0
        return statistics.median(e.elapsed_ms for e in self.executions)

    @property
    def plan_fingerprints(self) -> List[str]:
        """Distinct plans observed, in first-seen order (plan regressions
        show up as a fingerprint change)."""
        seen: List[str] = []
        for execution in self.executions:
            if execution.plan_fingerprint not in seen:
                seen.append(execution.plan_fingerprint)
        return seen

    @property
    def had_plan_change(self) -> bool:
        """True when more than one distinct plan was observed."""
        return len(self.plan_fingerprints) > 1


class QueryStore:
    """Records executions; query by text or rank by resource usage."""

    def __init__(self, capacity: int = 10_000):
        self.capacity = capacity
        self._stats: Dict[str, QueryStats] = {}
        self._recorded = 0

    def record(self, sql: str, metrics: QueryMetrics,
               plan_fingerprint: str = "") -> None:
        """Record one execution of ``sql``."""
        stats = self._stats.get(sql)
        if stats is None:
            stats = QueryStats(sql=sql)
            self._stats[sql] = stats
        stats.executions.append(QueryExecution(
            cpu_ms=metrics.cpu_ms,
            elapsed_ms=metrics.elapsed_ms,
            data_read_mb=metrics.data_read_mb,
            rows_returned=metrics.rows_returned,
            plan_fingerprint=plan_fingerprint,
        ))
        self._recorded += 1
        if len(stats.executions) > self.capacity:
            stats.executions.pop(0)

    def __len__(self) -> int:
        return len(self._stats)

    @property
    def recorded_executions(self) -> int:
        """Total executions recorded (across all statements)."""
        return self._recorded

    def stats(self, sql: str) -> Optional[QueryStats]:
        """Aggregates for one statement text, or None if never seen."""
        return self._stats.get(sql)

    def top_by_cpu(self, n: int = 10) -> List[QueryStats]:
        """The statements consuming the most total CPU — the classic
        "what should I tune?" Query Store view."""
        ordered = sorted(self._stats.values(),
                         key=lambda s: s.total_cpu_ms, reverse=True)
        return ordered[:n]

    def regressed_queries(self) -> List[QueryStats]:
        """Statements whose plan changed between executions (the signal
        SQL Server's Automatic Plan Correction acts on, Section 5.2.1)."""
        return [s for s in self._stats.values() if s.had_plan_change]

    def as_workload(self, weight_by_frequency: bool = True
                    ) -> List[Tuple[str, float]]:
        """Export (sql, weight) pairs for the tuning advisor, weighting
        each statement by how often it ran."""
        out = []
        for stats in self._stats.values():
            weight = float(stats.count) if weight_by_frequency else 1.0
            out.append((stats.sql, weight))
        return out

    def clear(self) -> None:
        """Forget all recorded history."""
        self._stats.clear()
        self._recorded = 0


def plan_fingerprint(planned) -> str:
    """Stable fingerprint of a plan's shape: node kinds + leaf indexes."""
    if planned is None:
        return ""
    parts = []
    for node in planned.root.walk():
        label = type(node).__name__
        descriptor = getattr(node, "descriptor", None)
        if descriptor is not None:
            label += f"[{descriptor.name}]"
        method = getattr(node, "method", None)
        if method:
            label += f"({method})"
        strategy = getattr(node, "strategy", None)
        if strategy:
            label += f"({strategy})"
        parts.append(label)
    return "->".join(parts)
