"""Calibrated cost model constants for the simulated engine.

The paper measures elapsed time, CPU time, data read, and memory on a
specific server (dual-socket Xeon, 40 hardware threads, HDD RAID-0 with
~1 GB/s sequential read and ~400 MB/s write). We reproduce the *shape* of
its results with a deterministic cost model: every operator charges CPU
and I/O against an :class:`repro.engine.metrics.ExecutionContext` using the
constants below.

The constants encode the structural asymmetries the paper's findings rest
on:

* **Batch mode vs row mode.** Columnstore scans use vectorized (batch
  mode) execution, roughly 20-40x cheaper per row than row-at-a-time
  processing (Section 2; Abadi et al.). ``batch_cpu_ms_per_row`` vs
  ``row_cpu_ms_per_row``.
* **Sequential vs random-ish I/O.** Columnstores read multi-megabyte
  segments sequentially at full device bandwidth, while B+ tree range
  scans read kilobyte pages with seeks in between, achieving a fraction
  of sequential bandwidth (Section 3.2.1 attributes part of CSI's
  advantage to "accessing and prefetching larger data blocks — megabytes
  in CSI compared to kilobytes in B+ tree").
* **Parallelism.** Columnstore scans and large B+ tree scans run at high
  degree-of-parallelism (DOP), dividing elapsed time but adding startup
  and coordination CPU; very selective B+ tree plans run serially and are
  the most CPU-efficient (Figure 1(b)).

All times are milliseconds; all sizes are bytes unless suffixed ``_mb``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Tunable constants for CPU, I/O, and memory charging.

    A single instance is shared by the storage engine, executor, optimizer
    and advisor so that optimizer estimates and "measured" execution agree
    up to cardinality estimation error — mirroring how DTA trusts the
    server's cost model.
    """

    # ------------------------------------------------------------------ CPU
    #: Row-at-a-time processing cost per row per operator (row mode).
    #: The ~80x gap to ``batch_cpu_ms_per_row`` reflects the paper's
    #: Figure 1(b), where the full-scan CPU-time gap between B+ tree row
    #: mode and columnstore batch mode approaches two orders of magnitude.
    row_cpu_ms_per_row: float = 2e-3
    #: Vectorized processing cost per row per operator (batch mode).
    batch_cpu_ms_per_row: float = 2.5e-5
    #: Cost of one B+ tree root-to-leaf traversal (binary searches, pins).
    seek_cpu_ms: float = 0.02
    #: Per-row cost of inserting into / deleting from a B+ tree.
    btree_update_cpu_ms_per_row: float = 4e-3
    #: Per-row hash-table build/probe cost (row mode).
    hash_cpu_ms_per_row: float = 9e-4
    #: Per-row comparison-sort cost factor; total = n * log2(n) * this.
    sort_cpu_ms_per_row_log: float = 1.1e-4
    #: Per-row streaming-aggregate cost (sorted input, no hash table).
    stream_agg_cpu_ms_per_row: float = 3e-4
    #: Fixed CPU to decode (decompress) one column segment.
    segment_decode_cpu_ms: float = 0.05
    #: CPU for serving one segment from the decoded-segment cache (hash
    #: lookup + LRU bump); what a scan pays *instead of*
    #: ``segment_decode_cpu_ms`` and the segment read on a cache hit.
    segment_cache_lookup_cpu_ms: float = 1e-3
    #: Per-row cost of locating a row inside compressed row groups — the
    #: expensive scan a *primary* CSI performs to populate its delete
    #: bitmap (Section 2: "deleting a row in a primary columnstore needs
    #: to scan the compressed row group to obtain the physical locator").
    csi_locate_cpu_ms_per_row: float = 2.5e-4
    #: Per-row cost of the tuple mover compressing delta-store rows into
    #: a row group (sorting, encoding, segment writes). This is what
    #: makes *large* updates so expensive on columnstores (Figure 5's
    #: ~16x at 40% updated): every updated row is re-inserted through the
    #: delta store and eventually recompressed.
    csi_compress_cpu_ms_per_row: float = 0.3

    # ------------------------------------------------------------------ I/O
    # NOTE on device scaling: the paper's tables are 10-100 GB on an HDD
    # RAID with ~4 ms random page reads and ~1 GB/s sequential reads.
    # This repository's tables are ~1000x smaller, and its per-row CPU
    # constants (calibrated so simulated times are meaningful at this
    # scale) are correspondingly larger than real hardware's. The device
    # constants below therefore describe a *scaled* HDD chosen to
    # preserve the two ratios that position the paper's cold-run
    # crossovers: (random page read) / (full sequential table read), and
    # (I/O time) / (CPU time) for a full scan. The sequential:B+ tree
    # chain:random relationships (1 : 4x slower : seek-dominated) match
    # the paper's description of megabyte CSI reads vs kilobyte B+ tree
    # page reads.
    #: Page size used by the row-store side (heap and B+ tree).
    page_bytes: int = 8192
    #: Random single-page read (seek + rotational latency + transfer).
    random_io_ms_per_page: float = 0.5
    #: Sequential large-block read bandwidth (columnstore segments).
    seq_io_ms_per_mb: float = 10.0
    #: Effective B+ tree leaf-chain read bandwidth: page-sized reads with
    #: read-ahead run slightly below the sequential rate.
    btree_scan_io_ms_per_mb: float = 12.0
    #: Write bandwidth (2.5x slower than reads, like the paper's RAID).
    write_io_ms_per_mb: float = 25.0

    # ------------------------------------------------- parallelism (DOP)
    #: Maximum degree of parallelism (the paper's server has 40 threads).
    max_dop: int = 40
    #: Fixed elapsed cost of starting a parallel plan (thread setup).
    parallel_startup_ms: float = 1.2
    #: CPU inflation of parallel plans (exchange/coordination overhead).
    parallel_cpu_overhead: float = 1.25
    #: Minimum estimated rows an operator must process for the optimizer
    #: to choose a parallel plan ("cost threshold for parallelism").
    parallel_row_threshold: int = 1_000

    # ------------------------------------------------------------- memory
    #: Default query working-memory grant (bytes). Figure 4 limits this.
    default_memory_grant_bytes: int = 256 * 1024 * 1024
    #: Per-row hash-table memory overhead beyond payload bytes.
    hash_entry_overhead_bytes: int = 36
    #: Extra CPU multiplier for rows that go through a disk spill
    #: (written once, read once, plus partitioning overhead).
    spill_cpu_multiplier: float = 2.2

    # --------------------------------------------------------- updates
    #: Per-statement fixed cost (parse/plan cache lookup, logging).
    statement_overhead_ms: float = 0.05
    #: Per-row logging cost for any modification.
    log_write_ms_per_row: float = 1e-3

    def scaled_storage(self, slowdown: float) -> "CostModel":
        """Return a copy with all I/O costs multiplied by ``slowdown``.

        Used by ablation benches: the paper notes "the slower the storage,
        the higher is the cross-over point" (Section 3.2.3).
        """
        return replace(
            self,
            random_io_ms_per_page=self.random_io_ms_per_page * slowdown,
            seq_io_ms_per_mb=self.seq_io_ms_per_mb * slowdown,
            btree_scan_io_ms_per_mb=self.btree_scan_io_ms_per_mb * slowdown,
            write_io_ms_per_mb=self.write_io_ms_per_mb * slowdown,
        )


#: The default, paper-calibrated cost model.
DEFAULT_COST_MODEL = CostModel()

MB = 1024 * 1024
