"""DMV-style system views over the always-on telemetry layer.

Reproduces the monitoring surface SQL Server DBAs (and auto-tuners)
consume — the dynamic management views referenced throughout the paper's
methodology and related work:

======================================================  ======================================================
repro view                                              SQL Server counterpart
======================================================  ======================================================
``dm_db_index_usage_stats``                             ``sys.dm_db_index_usage_stats``
``dm_db_column_store_row_group_physical_stats``         ``sys.dm_db_column_store_row_group_physical_stats``
``dm_db_missing_index_details``                         ``sys.dm_db_missing_index_details`` (+ group stats)
``dm_exec_query_stats``                                 ``sys.dm_exec_query_stats`` (via the Query Store)
``dm_os_memory_cache_counters``                         ``sys.dm_os_memory_cache_counters``
``dm_os_wait_stats``                                    ``sys.dm_os_wait_stats``
``dm_exec_session_wait_stats``                          ``sys.dm_exec_session_wait_stats``
``dm_xe_ring_buffer``                                   ``sys.dm_xe_session_targets`` (ring buffer target)
======================================================  ======================================================

Each view is *virtual*: :func:`materialize_system_views` snapshots the
live telemetry into an ordinary heap :class:`~repro.storage.table.Table`
and registers it with the database, so ``SELECT * FROM
dm_db_index_usage_stats`` parses, binds, plans, and executes through the
normal engine path (filterable, joinable, aggregatable). The
:class:`~repro.engine.executor.Executor` rematerializes any referenced
view right before binding, so queries always see current counters.

Collection is observation-only — building a snapshot charges zero
modeled cost — and stamps come from the deterministic logical clock, so
snapshots are reproducible run-to-run. (Querying a view through SQL
charges normal modeled costs for the query itself, like any table scan;
the views never appear in figure workloads.)

The whole snapshot also exports as JSON (:func:`snapshot`) and
Prometheus text exposition format (:func:`to_prometheus`), surfaced by
``python -m repro monitor``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CatalogError
from repro.core.schema import Column, TableSchema
from repro.core.types import BIGINT, INT, decimal, varchar
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.database import Database
from repro.storage.table import Table
from repro.storage.waits import HISTOGRAM_BUCKETS_MS, WAIT_TYPES

#: Names of every system view, in registration order.
SYSTEM_VIEW_NAMES: Tuple[str, ...] = (
    "dm_db_index_usage_stats",
    "dm_db_column_store_row_group_physical_stats",
    "dm_db_missing_index_details",
    "dm_exec_query_stats",
    "dm_os_memory_cache_counters",
    "dm_os_wait_stats",
    "dm_exec_session_wait_stats",
    "dm_xe_ring_buffer",
)

#: Maximum characters of statement text projected into
#: ``dm_exec_query_stats`` (SQL Server truncates via ``dm_exec_sql_text``
#: offsets; we simply clip).
_SQL_TEXT_LIMIT = 512

_RATIO = decimal(scale=4)


def _schema(name: str, *columns: Column) -> TableSchema:
    return TableSchema(name, list(columns))


_VIEW_SCHEMAS: Dict[str, TableSchema] = {
    "dm_db_index_usage_stats": _schema(
        "dm_db_index_usage_stats",
        Column("table_name", varchar(128), nullable=False),
        Column("index_name", varchar(128), nullable=False),
        Column("index_kind", varchar(8), nullable=False),
        Column("is_primary", INT, nullable=False),
        Column("user_seeks", BIGINT, nullable=False),
        Column("user_scans", BIGINT, nullable=False),
        Column("user_lookups", BIGINT, nullable=False),
        Column("user_updates", BIGINT, nullable=False),
        Column("last_user_seek", BIGINT, nullable=False),
        Column("last_user_scan", BIGINT, nullable=False),
        Column("last_user_lookup", BIGINT, nullable=False),
        Column("last_user_update", BIGINT, nullable=False),
        Column("segments_scanned", BIGINT, nullable=False),
        Column("segments_skipped", BIGINT, nullable=False),
    ),
    "dm_db_column_store_row_group_physical_stats": _schema(
        "dm_db_column_store_row_group_physical_stats",
        Column("table_name", varchar(128), nullable=False),
        Column("index_name", varchar(128), nullable=False),
        Column("row_group_id", INT, nullable=False),
        Column("state", varchar(16), nullable=False),
        Column("total_rows", BIGINT, nullable=False),
        Column("deleted_rows", BIGINT, nullable=False),
        Column("trimmed_rows", BIGINT, nullable=False),
        Column("size_in_bytes", BIGINT, nullable=False),
        Column("delta_store_rows", BIGINT, nullable=False),
        Column("delete_buffer_rows", BIGINT, nullable=False),
        Column("fragmentation", _RATIO, nullable=False),
    ),
    "dm_db_missing_index_details": _schema(
        "dm_db_missing_index_details",
        Column("table_name", varchar(128), nullable=False),
        Column("equality_columns", varchar(256)),
        Column("inequality_columns", varchar(256)),
        Column("included_columns", varchar(256)),
        Column("statement_count", BIGINT, nullable=False),
        Column("avg_selectivity", _RATIO, nullable=False),
        Column("last_seen", BIGINT, nullable=False),
    ),
    "dm_exec_query_stats": _schema(
        "dm_exec_query_stats",
        Column("sql_text", varchar(_SQL_TEXT_LIMIT), nullable=False),
        Column("execution_count", BIGINT, nullable=False),
        Column("total_cpu_ms", decimal(scale=3), nullable=False),
        Column("avg_cpu_ms", decimal(scale=3), nullable=False),
        Column("total_elapsed_ms", decimal(scale=3), nullable=False),
        Column("plan_count", INT, nullable=False),
        Column("had_plan_change", INT, nullable=False),
    ),
    "dm_os_memory_cache_counters": _schema(
        "dm_os_memory_cache_counters",
        Column("cache_name", varchar(64), nullable=False),
        Column("entries", BIGINT, nullable=False),
        Column("bytes_cached", BIGINT, nullable=False),
        Column("budget_bytes", BIGINT, nullable=False),
        Column("hits", BIGINT, nullable=False),
        Column("misses", BIGINT, nullable=False),
        Column("evictions", BIGINT, nullable=False),
        Column("hit_ratio", _RATIO, nullable=False),
        Column("enabled", INT, nullable=False),
    ),
    "dm_os_wait_stats": _schema(
        "dm_os_wait_stats",
        Column("wait_type", varchar(32), nullable=False),
        Column("waiting_tasks_count", BIGINT, nullable=False),
        Column("wait_time_ms", decimal(scale=3), nullable=False),
        Column("max_wait_time_ms", decimal(scale=3), nullable=False),
        # SQL Server splits runnable-queue time out as signal waits; the
        # repro engine has no scheduler queue, so this column is always
        # 0 — kept so DBA queries written against the real view port over.
        Column("signal_wait_time_ms", decimal(scale=3), nullable=False),
    ),
    "dm_exec_session_wait_stats": _schema(
        "dm_exec_session_wait_stats",
        Column("session_id", INT, nullable=False),
        Column("wait_type", varchar(32), nullable=False),
        Column("waiting_tasks_count", BIGINT, nullable=False),
        Column("wait_time_ms", decimal(scale=3), nullable=False),
        Column("max_wait_time_ms", decimal(scale=3), nullable=False),
        Column("signal_wait_time_ms", decimal(scale=3), nullable=False),
    ),
    "dm_xe_ring_buffer": _schema(
        "dm_xe_ring_buffer",
        Column("event_id", BIGINT, nullable=False),
        Column("timestamp", BIGINT, nullable=False),
        Column("event_name", varchar(64), nullable=False),
        Column("session_id", INT, nullable=False),
        Column("payload", varchar(1024), nullable=False),
    ),
}


def view_schema(name: str) -> TableSchema:
    """The schema of one system view (CatalogError for unknown names)."""
    try:
        return _VIEW_SCHEMAS[name]
    except KeyError:
        raise CatalogError(f"no system view named {name!r}") from None


# ------------------------------------------------------------- row builders
def usage_rows(database: Database) -> List[Tuple[object, ...]]:
    """``dm_db_index_usage_stats``: one row per index of every user
    table, in table-creation / index-creation order."""
    rows = []
    for table in database.tables():
        for index in table.all_indexes:
            usage = index.usage
            rows.append((
                table.name, index.name, index.kind,
                1 if index.is_primary else 0,
                usage.user_seeks, usage.user_scans, usage.user_lookups,
                usage.user_updates,
                usage.last_user_seek, usage.last_user_scan,
                usage.last_user_lookup, usage.last_user_update,
                usage.segments_scanned, usage.segments_skipped,
            ))
    return rows


def rowgroup_rows(database: Database) -> List[Tuple[object, ...]]:
    """``dm_db_column_store_row_group_physical_stats``: one row per
    compressed row group, plus one OPEN row for a non-empty delta store
    (SQL Server surfaces the delta store the same way).

    ``trimmed_rows`` is the unused capacity of a compressed group
    (``rowgroup_size - total_rows``); ``delta_store_rows`` and
    ``delete_buffer_rows`` repeat the index-level depths on every row of
    that index so a single-row filter still sees them."""
    rows = []
    for table in database.tables():
        for index in table.all_indexes:
            if not isinstance(index, ColumnstoreIndex):
                continue
            delta_rows = index.delta_rows
            buffer_rows = index.delete_buffer_rows
            fragmentation = round(index.fragmentation, 6)
            for group_id, state in enumerate(index._groups):
                group = state.group
                rows.append((
                    table.name, index.name, group_id, "COMPRESSED",
                    group.n_rows, state.n_deleted,
                    max(0, index.rowgroup_size - group.n_rows),
                    group.size_bytes(), delta_rows, buffer_rows,
                    fragmentation,
                ))
            if delta_rows:
                rows.append((
                    table.name, index.name, index.n_rowgroups, "OPEN",
                    delta_rows, 0, 0,
                    delta_rows * index._delta_row_bytes(),
                    delta_rows, buffer_rows, fragmentation,
                ))
    return rows


def missing_index_rows(database: Database) -> List[Tuple[object, ...]]:
    """``dm_db_missing_index_details``: grouped optimizer observations,
    most-requested first."""
    rows = []
    for details in database.telemetry.missing_indexes():
        rows.append((
            details.table_name,
            ", ".join(details.equality_columns) or None,
            ", ".join(details.inequality_columns) or None,
            ", ".join(details.included_columns) or None,
            details.statement_count,
            round(details.avg_selectivity, 6),
            details.last_seen,
        ))
    return rows


def query_stats_rows(query_store) -> List[Tuple[object, ...]]:
    """``dm_exec_query_stats``: lifetime per-statement aggregates from a
    :class:`~repro.engine.query_store.QueryStore`, highest total CPU
    first. Empty when no store is attached."""
    if query_store is None:
        return []
    rows = []
    for stats in query_store.top_by_cpu(len(query_store)):
        rows.append((
            stats.sql[:_SQL_TEXT_LIMIT],
            stats.recorded,
            round(stats.total_cpu_ms, 4),
            round(stats.mean_cpu_ms, 4),
            round(stats.total_elapsed_ms, 4),
            len(stats.plan_fingerprints),
            1 if stats.had_plan_change else 0,
        ))
    return rows


def memory_cache_rows(database: Database,
                      buffer_pool=None) -> List[Tuple[object, ...]]:
    """``dm_os_memory_cache_counters``: the shared decoded-segment cache,
    plus a :class:`~repro.storage.bufferpool.BufferPool` when one exists
    — either the database's own demand-paging pool
    (``Database.open(..., paging=True)``) or a modeled pool the caller
    tracks. Byte math derives from the pool's real accounting
    (``bytes_resident``/``budget_bytes``, both rooted in the single
    :data:`~repro.storage.bufferpool.PAGE_BYTES` constant shared with the
    on-disk format) instead of a hardcoded page size."""
    cache = database.segment_cache
    stats = cache.stats
    rows = [(
        "segment_cache", len(cache), cache.bytes_cached, cache.budget_bytes,
        stats.hits, stats.misses, stats.evictions,
        round(stats.hit_ratio, 6), 1 if cache.enabled else 0,
    )]
    if buffer_pool is None:
        buffer_pool = getattr(database, "buffer_pool", None)
    if buffer_pool is not None:
        rows.append((
            "buffer_pool", len(buffer_pool), buffer_pool.bytes_resident,
            buffer_pool.budget_bytes,
            buffer_pool.hits, buffer_pool.misses, buffer_pool.evictions,
            round(buffer_pool.hit_ratio, 6), 1,
        ))
    return rows


def wait_stats_rows(database: Database) -> List[Tuple[object, ...]]:
    """``dm_os_wait_stats``: server-wide wait accumulation, every
    canonical wait type present (zeros included, like the real view),
    in taxonomy order.

    When a WAL is attached, two informational counter rows follow —
    ``WAL_FLUSH`` / ``WAL_FSYNC`` surface the log's flush and fsync
    counts through ``waiting_tasks_count`` (their blocked time is
    already accumulated under ``WRITELOG``, so the ms columns are 0)."""
    rows = []
    for wait_type, acc in database.waits.server_stats().items():
        rows.append((
            wait_type, acc.waiting_tasks_count,
            round(acc.wait_time_ms, 4), round(acc.max_wait_time_ms, 4),
            0.0,
        ))
    wal = getattr(database, "wal", None)
    if wal is not None:
        rows.append(("WAL_FLUSH", wal.flushes, 0.0, 0.0, 0.0))
        rows.append(("WAL_FSYNC", wal.fsyncs, 0.0, 0.0, 0.0))
    return rows


def session_wait_stats_rows(database: Database) -> List[Tuple[object, ...]]:
    """``dm_exec_session_wait_stats``: per-session wait accumulation,
    sessions ascending, wait types in taxonomy order, only nonzero
    buckets (the real view likewise only carries waits that happened).
    Session 0 is the unattributed/internal bucket (morsel workers,
    standalone executors). Summing this view's counters grouped by
    wait_type reproduces ``dm_os_wait_stats`` exactly — recording updates
    both ledgers under one lock."""
    rows = []
    for session_id, buckets in database.waits.session_stats().items():
        for wait_type, acc in buckets.items():
            rows.append((
                session_id, wait_type, acc.waiting_tasks_count,
                round(acc.wait_time_ms, 4), round(acc.max_wait_time_ms, 4),
                0.0,
            ))
    return rows


def xe_ring_rows(database: Database) -> List[Tuple[object, ...]]:
    """``dm_xe_ring_buffer``: the retained extended events oldest-first,
    payloads as deterministic (sorted-keys) JSON clipped to the column
    width."""
    rows = []
    for event in database.events.events():
        payload = json.dumps(event.payload, sort_keys=True, default=str)
        rows.append((
            event.event_id, event.timestamp, event.name, event.session_id,
            payload[:1024],
        ))
    return rows


_ROW_BUILDERS = {
    "dm_db_index_usage_stats": lambda db, qs, bp: usage_rows(db),
    "dm_db_column_store_row_group_physical_stats":
        lambda db, qs, bp: rowgroup_rows(db),
    "dm_db_missing_index_details": lambda db, qs, bp: missing_index_rows(db),
    "dm_exec_query_stats": lambda db, qs, bp: query_stats_rows(qs),
    "dm_os_memory_cache_counters":
        lambda db, qs, bp: memory_cache_rows(db, bp),
    "dm_os_wait_stats": lambda db, qs, bp: wait_stats_rows(db),
    "dm_exec_session_wait_stats":
        lambda db, qs, bp: session_wait_stats_rows(db),
    "dm_xe_ring_buffer": lambda db, qs, bp: xe_ring_rows(db),
}


# ----------------------------------------------------------- materialization
def build_view(name: str, database: Database, query_store=None,
               buffer_pool=None) -> Table:
    """Snapshot one system view into a standalone heap table."""
    schema = view_schema(name)
    table = Table(schema)
    table.bulk_load(_ROW_BUILDERS[name](database, query_store, buffer_pool))
    return table


def materialize_system_views(
    database: Database,
    names: Optional[Sequence[str]] = None,
    query_store=None,
    buffer_pool=None,
) -> List[str]:
    """Snapshot the requested system views (all by default) and register
    them with ``database`` so SQL queries resolve them like tables.

    Returns the names actually materialized. Views shadowed by a real
    user table of the same name are skipped — user tables win."""
    materialized = []
    for name in (names if names is not None else SYSTEM_VIEW_NAMES):
        if name not in _VIEW_SCHEMAS or database.has_table(name):
            continue
        database.register_system_view(
            build_view(name, database, query_store, buffer_pool))
        materialized.append(name)
    return materialized


# ------------------------------------------------------------------ exports
def snapshot(database: Database, query_store=None,
             buffer_pool=None) -> Dict[str, object]:
    """The full telemetry snapshot as a JSON-serialisable dict: one entry
    per view mapping column names to row values, plus the logical clock."""
    out: Dict[str, object] = {
        "logical_clock": database.telemetry.clock.now,
    }
    for name in SYSTEM_VIEW_NAMES:
        columns = view_schema(name).column_names()
        rows = _ROW_BUILDERS[name](database, query_store, buffer_pool)
        out[name] = [dict(zip(columns, row)) for row in rows]
    return out


def _escape_label(value: object) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _prom_line(metric: str, labels: Dict[str, object],
               value: object) -> str:
    if labels:
        inner = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels.items())
        return f"{metric}{{{inner}}} {value}"
    return f"{metric} {value}"


def to_prometheus(database: Database, query_store=None,
                  buffer_pool=None) -> str:
    """The snapshot in Prometheus text exposition format.

    Cumulative usage counters export as ``counter`` metrics; physical
    state (rowgroups, fragmentation, cache occupancy) as ``gauge``.
    Output order is deterministic (table/index creation order)."""
    lines: List[str] = []

    def header(metric: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")

    header("repro_logical_clock", "counter",
           "Monotonic statement sequence number (deterministic stamps).")
    lines.append(_prom_line("repro_logical_clock", {},
                            database.telemetry.clock.now))

    usage_metrics = [
        ("user_seeks", "Seeks through the index by user statements."),
        ("user_scans", "Full scans of the index by user statements."),
        ("user_lookups", "Bookmark/RID lookups into the structure."),
        ("user_updates", "User DML statements that maintained the index."),
        ("segments_scanned", "Columnstore segments read by user scans."),
        ("segments_skipped", "Columnstore segments eliminated via min/max."),
    ]
    usage = usage_rows(database)
    columns = view_schema("dm_db_index_usage_stats").column_names()
    for field, help_text in usage_metrics:
        metric = f"repro_index_{field}"
        header(metric, "counter", help_text)
        ordinal = columns.index(field)
        for row in usage:
            lines.append(_prom_line(
                metric, {"table": row[0], "index": row[1], "kind": row[2]},
                row[ordinal]))

    rowgroup_metrics = [
        ("repro_csi_rowgroups", "n_rowgroups", "Compressed row groups."),
        ("repro_csi_delta_rows", "delta_rows", "Rows in the delta store."),
        ("repro_csi_delete_buffer_rows", "delete_buffer_rows",
         "Rids awaiting delete-buffer compaction."),
    ]
    csi_indexes = [
        (table.name, index)
        for table in database.tables()
        for index in table.all_indexes
        if isinstance(index, ColumnstoreIndex)
    ]
    for metric, attribute, help_text in rowgroup_metrics:
        header(metric, "gauge", help_text)
        for table_name, index in csi_indexes:
            lines.append(_prom_line(
                metric, {"table": table_name, "index": index.name},
                getattr(index, attribute)))
    header("repro_csi_fragmentation", "gauge",
           "Fraction of compressed slots wasted on deleted/buffered rows.")
    for table_name, index in csi_indexes:
        lines.append(_prom_line(
            "repro_csi_fragmentation",
            {"table": table_name, "index": index.name},
            f"{index.fragmentation:.6f}"))

    header("repro_missing_index_requests", "counter",
           "Statements that would have benefited from a missing index.")
    for details in database.telemetry.missing_indexes():
        lines.append(_prom_line(
            "repro_missing_index_requests",
            {"table": details.table_name,
             "keys": ",".join(details.key_columns)},
            details.statement_count))

    cache_metrics = [
        ("hits", "counter", 4), ("misses", "counter", 5),
        ("evictions", "counter", 6), ("bytes_cached", "gauge", 2),
        ("entries", "gauge", 1),
    ]
    cache_rows = memory_cache_rows(database, buffer_pool)
    for field, kind, ordinal in cache_metrics:
        metric = f"repro_cache_{field}"
        header(metric, kind, f"Memory cache {field.replace('_', ' ')}.")
        for row in cache_rows:
            lines.append(_prom_line(metric, {"cache": row[0]}, row[ordinal]))

    header("repro_wait_time_ms", "histogram",
           "Real blocked milliseconds per wait type (fixed buckets; "
           "observation-only wall time, not modeled cost).")
    for wait_type, acc in database.waits.server_stats().items():
        labels = {"wait_type": wait_type}
        cumulative = 0
        for bound, count in zip(HISTOGRAM_BUCKETS_MS, acc.bucket_counts):
            cumulative += count
            lines.append(_prom_line(
                "repro_wait_time_ms_bucket",
                {**labels, "le": f"{bound:g}"}, cumulative))
        cumulative += acc.bucket_counts[-1]
        lines.append(_prom_line(
            "repro_wait_time_ms_bucket", {**labels, "le": "+Inf"},
            cumulative))
        lines.append(_prom_line("repro_wait_time_ms_sum", labels,
                                f"{acc.wait_time_ms:.4f}"))
        lines.append(_prom_line("repro_wait_time_ms_count", labels,
                                acc.waiting_tasks_count))

    header("repro_xe_events_emitted", "counter",
           "Extended events emitted into the ring buffer (lifetime).")
    lines.append(_prom_line("repro_xe_events_emitted", {},
                            database.events.emitted))
    header("repro_xe_events_dropped", "counter",
           "Extended events aged off the full ring buffer.")
    lines.append(_prom_line("repro_xe_events_dropped", {},
                            database.events.dropped))

    wal = getattr(database, "wal", None)
    if wal is not None:
        header("repro_wal_flushes", "counter",
               "WAL flush calls (commit group flushes).")
        lines.append(_prom_line("repro_wal_flushes", {}, wal.flushes))
        header("repro_wal_fsyncs", "counter",
               "fsync barriers issued by the WAL.")
        lines.append(_prom_line("repro_wal_fsyncs", {}, wal.fsyncs))

    if query_store is not None:
        header("repro_query_store_executions", "counter",
               "Executions recorded by the Query Store (lifetime).")
        lines.append(_prom_line("repro_query_store_executions", {},
                                query_store.recorded_executions))
        header("repro_query_store_cpu_ms", "counter",
               "Total modeled CPU recorded by the Query Store.")
        lines.append(_prom_line(
            "repro_query_store_cpu_ms", {},
            f"{query_store.total_cpu_ms:.4f}"))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------- reports
def unused_index_report(database: Database) -> List[Dict[str, object]]:
    """Secondary indexes that were maintained but never read — the
    classic drop-candidate query over ``sys.dm_db_index_usage_stats``.

    Sorted by wasted maintenance (``user_updates`` desc, then size)."""
    report = []
    for table in database.tables():
        for index in table.all_indexes:
            if index.is_primary:
                continue
            usage = index.usage
            if usage.total_reads == 0:
                report.append({
                    "table_name": table.name,
                    "index_name": index.name,
                    "index_kind": index.kind,
                    "user_updates": usage.user_updates,
                    "size_bytes": index.size_bytes(),
                })
    report.sort(key=lambda entry: (-entry["user_updates"],
                                   -entry["size_bytes"],
                                   entry["table_name"],
                                   entry["index_name"]))
    return report


#: Package-level aliases: ``repro.dmv_snapshot`` / ``repro.dmv_to_prometheus``
#: re-export :func:`snapshot` and :func:`to_prometheus` under names that
#: stay unambiguous outside this module.
dmv_snapshot = snapshot
dmv_to_prometheus = to_prometheus
