"""Plan descriptors: index metadata and logical-physical plan trees.

The optimizer plans against :class:`IndexDescriptor` metadata rather than
physical index objects. This indirection is what makes the what-if API
possible: a *hypothetical* index is just a descriptor with estimated size
and no physical structure behind it (Chaudhuri & Narasayya's AutoAdmin
design, which DTA builds on). Plans over hypothetical descriptors can be
costed but not executed; plans over materialized descriptors are handed
to the materializer for execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import OptimizerError
from repro.engine.expressions import ColumnRange, Expr
from repro.engine.operators.aggregates import AggregateSpec

KIND_HEAP = "heap"
KIND_BTREE = "btree"
KIND_CSI = "csi"


@dataclass
class IndexDescriptor:
    """Metadata describing one index (real or hypothetical)."""

    name: str
    table_name: str
    kind: str  # heap | btree | csi
    is_primary: bool
    key_columns: List[str] = field(default_factory=list)
    included_columns: List[str] = field(default_factory=list)
    #: Columns stored by a columnstore index.
    csi_columns: List[str] = field(default_factory=list)
    size_bytes: int = 0
    #: Per-column compressed sizes for CSIs — the what-if API extension of
    #: Section 4.2 (the optimizer needs them because a CSI scan reads only
    #: the referenced columns).
    column_sizes: Dict[str, int] = field(default_factory=dict)
    #: Per-column dominant compression scheme for CSIs ("rle" |
    #: "dict" | "bitpack" | "raw"). Consulted by the cost model only
    #: under ``CostingOptions.compression_aware`` (Kimura-style
    #: compression-aware what-if costing); empty otherwise-harmless.
    column_encodings: Dict[str, str] = field(default_factory=dict)
    #: Column the underlying data was sorted on when the CSI was built,
    #: enabling segment elimination on that column (Figure 2).
    sorted_on: Optional[str] = None
    hypothetical: bool = False
    #: The physical structure (HeapFile / B+ tree / ColumnstoreIndex);
    #: None for hypothetical indexes.
    physical: object = None

    def covers(self, columns: Sequence[str]) -> bool:
        """Can this index produce ``columns`` without a base-table lookup?"""
        if self.kind == KIND_HEAP:
            return True
        if self.kind == KIND_CSI:
            return all(c in self.csi_columns for c in columns)
        if self.is_primary:
            return True
        covered = set(self.key_columns) | set(self.included_columns)
        return all(c in covered for c in columns)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        role = "primary" if self.is_primary else "secondary"
        hypo = " (hypothetical)" if self.hypothetical else ""
        if self.kind == KIND_CSI:
            return f"{self.name}: {role} columnstore{hypo}"
        if self.kind == KIND_BTREE:
            inc = f" INCLUDE {self.included_columns}" if self.included_columns else ""
            return f"{self.name}: {role} btree({self.key_columns}){inc}{hypo}"
        return f"{self.name}: heap{hypo}"

    def ddl(self) -> str:
        """CREATE INDEX-style rendering for advisor reports."""
        if self.kind == KIND_CSI:
            scope = "CLUSTERED" if self.is_primary else "NONCLUSTERED"
            return (f"CREATE {scope} COLUMNSTORE INDEX {self.name} "
                    f"ON {self.table_name}")
        if self.kind == KIND_BTREE:
            scope = "CLUSTERED" if self.is_primary else "NONCLUSTERED"
            keys = ", ".join(self.key_columns)
            inc = (f" INCLUDE ({', '.join(self.included_columns)})"
                   if self.included_columns else "")
            return (f"CREATE {scope} INDEX {self.name} ON "
                    f"{self.table_name} ({keys}){inc}")
        return f"-- {self.table_name} stored as heap"


# --------------------------------------------------------------- plan nodes
class PlanNode:
    """A node in the optimizer's chosen plan."""

    def __init__(self, inputs: Sequence["PlanNode"] = ()):
        self.inputs: List[PlanNode] = list(inputs)
        self.est_rows: float = 0.0
        self.est_cost: float = 0.0  # cumulative, ms of serial-equivalent work
        self.mode: str = "row"
        self.dop: int = 1

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        raise NotImplementedError

    def walk(self):
        """Pre-order traversal of this subtree."""
        yield self
        for node in self.inputs:
            yield from node.walk()

    def leaves(self) -> List["AccessPathNode"]:
        """All access-path leaf nodes in this subtree."""
        return [n for n in self.walk() if isinstance(n, AccessPathNode)]

    def explain(self, indent: int = 0) -> str:
        """Indented, human-readable plan-tree rendering."""
        lines = [" " * indent + self.describe()]
        for node in self.inputs:
            lines.append(node.explain(indent + 2))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"{type(self).__name__} rows={self.est_rows:.0f} "
                f"cost={self.est_cost:.2f}")


class AccessPathNode(PlanNode):
    """Leaf: read one table through one index."""

    def __init__(
        self,
        alias: str,
        descriptor: IndexDescriptor,
        access: str,  # 'scan' | 'seek'
        columns: List[str],  # bare column names to produce
        ranges: Optional[Dict[str, ColumnRange]] = None,
        residual: Optional[Expr] = None,
        needs_lookup: bool = False,
    ):
        super().__init__(())
        self.alias = alias
        self.descriptor = descriptor
        self.access = access
        self.columns = columns
        self.ranges = ranges or {}
        self.residual = residual
        self.needs_lookup = needs_lookup
        #: Ordered per-key-column ranges for a composite B+ tree seek
        #: (points followed by at most one non-point range).
        self.seek_ranges: Optional[List[ColumnRange]] = None
        self.mode = "batch" if descriptor.kind == KIND_CSI else "row"

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return [f"{self.alias}.{c}" for c in self.columns]

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        if self.descriptor.kind == KIND_BTREE:
            return [f"{self.alias}.{c}" for c in self.descriptor.key_columns]
        return []

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        lookup = " +lookup" if self.needs_lookup else ""
        bounds = ""
        if self.ranges:
            bounds = " " + ", ".join(
                f"{c}:[{r.low}..{r.high}]" for c, r in self.ranges.items())
        return (f"{self.access.upper()} {self.alias} via "
                f"{self.descriptor.describe()}{bounds}{lookup} "
                f"rows={self.est_rows:.0f} cost={self.est_cost:.3f} "
                f"dop={self.dop}")


class JoinNode(PlanNode):
    """A join in the chosen plan (hash, merge, or index nested loop)."""
    def __init__(self, method: str, left: PlanNode, right: PlanNode,
                 left_keys: List[str], right_keys: List[str]):
        super().__init__((left, right))
        self.method = method  # hash | merge | inl
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.mode = right.mode if method == "hash" else "row"

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.inputs[0].output_columns + self.inputs[1].output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        if self.method == "merge":
            return self.left_keys
        if self.method == "inl":
            ordering = getattr(self.inputs[0], "output_ordering", [])
            return list(ordering)
        return []

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"{self.method.upper()} JOIN {self.left_keys}="
                f"{self.right_keys} rows={self.est_rows:.0f} "
                f"cost={self.est_cost:.3f}")


class FilterNode(PlanNode):
    """Residual predicate applied above a join (multi-table conjuncts)."""

    def __init__(self, child: PlanNode, predicate: Expr):
        super().__init__((child,))
        self.predicate = predicate
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.inputs[0].output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        return getattr(self.inputs[0], "output_ordering", [])

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"FILTER {self.predicate} rows={self.est_rows:.0f} "
                f"cost={self.est_cost:.3f}")


class AggregateNode(PlanNode):
    """Aggregation in the chosen plan (hash or streaming)."""
    def __init__(self, strategy: str, child: PlanNode, group_by: List[str],
                 aggregates: List[AggregateSpec], spill_expected: bool = False):
        super().__init__((child,))
        self.strategy = strategy  # hash | stream
        self.group_by = group_by
        self.aggregates = aggregates
        self.spill_expected = spill_expected
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.group_by + [a.output for a in self.aggregates]

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        if self.strategy == "stream":
            return self.group_by
        return []

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        spill = " SPILL" if self.spill_expected else ""
        return (f"{self.strategy.upper()} AGG by={self.group_by}{spill} "
                f"rows={self.est_rows:.0f} cost={self.est_cost:.3f}")


class SortNode(PlanNode):
    """An explicit sort in the chosen plan."""
    def __init__(self, child: PlanNode, keys: List[Tuple[str, bool]],
                 spill_expected: bool = False):
        super().__init__((child,))
        self.keys = keys
        self.spill_expected = spill_expected
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.inputs[0].output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        if any(desc for _, desc in self.keys):
            return []
        return [name for name, _ in self.keys]

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        spill = " SPILL" if self.spill_expected else ""
        return (f"SORT {self.keys}{spill} rows={self.est_rows:.0f} "
                f"cost={self.est_cost:.3f}")


class TopNode(PlanNode):
    """Row-limit (TOP/LIMIT) node in the chosen plan."""
    def __init__(self, child: PlanNode, limit: int):
        super().__init__((child,))
        self.limit = limit
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return self.inputs[0].output_columns

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        return getattr(self.inputs[0], "output_ordering", [])

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return f"TOP {self.limit} rows={self.est_rows:.0f} cost={self.est_cost:.3f}"


class ProjectNode(PlanNode):
    """Final projection mapping internal names to output names."""

    def __init__(self, child: PlanNode, outputs: List[Tuple[str, str]]):
        # outputs: (display name, source column)
        super().__init__((child,))
        self.outputs = outputs
        self.mode = child.mode

    @property
    def output_columns(self) -> List[str]:
        """Names of the columns produced, in order."""
        return [name for name, _ in self.outputs]

    @property
    def output_ordering(self) -> List[str]:
        """Sorted-prefix columns of the output ([] when unsorted)."""
        child_order = getattr(self.inputs[0], "output_ordering", [])
        renames = {source: name for name, source in self.outputs}
        out = []
        for column in child_order:
            if column not in renames:
                break
            out.append(renames[column])
        return out

    def describe(self) -> str:
        """One-line human-readable summary of this node."""
        return (f"PROJECT {[n for n, _ in self.outputs]} "
                f"rows={self.est_rows:.0f} cost={self.est_cost:.3f}")


@dataclass
class PlannedQuery:
    """The optimizer's result: a plan tree and its estimated cost."""

    root: PlanNode
    est_cost: float
    est_rows: float
    uses_hypothetical: bool

    def explain(self) -> str:
        """Indented, human-readable plan-tree rendering."""
        return self.root.explain()

    def index_kinds_at_leaves(self) -> List[str]:
        """Index kind per leaf — the Figure 10 statistic."""
        return [leaf.descriptor.kind for leaf in self.root.leaves()]

    def is_hybrid(self) -> bool:
        """True when both a B+ tree/heap row-store leaf and a columnstore
        leaf appear in the same plan (Figure 10's 'hybrid plans')."""
        kinds = set(self.index_kinds_at_leaves())
        return KIND_CSI in kinds and (KIND_BTREE in kinds or KIND_HEAP in kinds)

    def referenced_indexes(self) -> List[IndexDescriptor]:
        """Descriptors of every index the plan reads."""
        return [leaf.descriptor for leaf in self.root.leaves()]
