"""Table and column statistics for cardinality estimation.

The optimizer estimates predicate selectivities from equi-depth histograms
plus distinct counts, built either from full data or from a block-level
sample (the advisor uses sampling for scalability, Section 4.4). Estimation
error is *intentional and realistic*: the paper notes optimizer
misestimates cause some hybrid recommendations to be sub-optimal in
measured cost (Figure 9's speedups below 1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import OptimizerError
from repro.engine.expressions import ColumnRange
from repro.storage.table import Table

HISTOGRAM_BUCKETS = 64


@dataclass
class ColumnStats:
    """Statistics for one column."""

    n_rows: int
    n_nulls: int
    n_distinct: int
    min_value: object
    max_value: object
    #: Equi-depth bucket upper bounds (numeric columns only).
    bucket_bounds: List[float] = field(default_factory=list)

    @property
    def null_fraction(self) -> float:
        """Fraction of NULL values in the column."""
        return self.n_nulls / self.n_rows if self.n_rows else 0.0

    def equality_selectivity(self, value: object) -> float:
        """P(column = value)."""
        if self.n_rows == 0 or self.n_distinct == 0:
            return 0.0
        if isinstance(value, (int, float)) and self.min_value is not None:
            if value < self.min_value or value > self.max_value:
                return 0.0
        return (1.0 - self.null_fraction) / self.n_distinct

    def range_selectivity(self, column_range: ColumnRange) -> float:
        """P(low <= column <= high) from the histogram."""
        if self.n_rows == 0:
            return 0.0
        if column_range.is_point:
            return self.equality_selectivity(column_range.low)
        low, high = column_range.low, column_range.high
        if not self.bucket_bounds:
            # Non-numeric column: fall back to a coarse guess.
            return 0.3
        frac_low = 0.0 if low is None else self._cdf(low)
        frac_high = 1.0 if high is None else self._cdf(high)
        selectivity = max(0.0, frac_high - frac_low)
        # Nudge for inclusivity of point-ish boundaries.
        if low is not None and column_range.low_inclusive:
            selectivity += self.equality_selectivity(low) * 0.5
        return min(1.0, selectivity * (1.0 - self.null_fraction))

    def _cdf(self, value: object) -> float:
        """Fraction of non-null values <= value, via equi-depth buckets."""
        bounds = self.bucket_bounds
        if not bounds:
            return 0.5
        if not isinstance(value, (int, float)):
            return 0.5
        position = bisect.bisect_left(bounds, value)
        if position >= len(bounds):
            return 1.0
        # Interpolate within the bucket.
        bucket_low = bounds[position - 1] if position > 0 else self.min_value
        bucket_high = bounds[position]
        if bucket_high == bucket_low:
            within = 1.0
        else:
            within = (value - bucket_low) / (bucket_high - bucket_low)
            within = min(1.0, max(0.0, within))
        return (position + within) / len(bounds)


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int
    columns: Dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats:
        """Values of one result/batch/stats column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise OptimizerError(f"no statistics for column {name!r}") from None

    def selectivity(self, ranges: Dict[str, ColumnRange]) -> float:
        """Combined selectivity of per-column ranges, assuming
        independence (the textbook assumption, with its textbook errors)."""
        selectivity = 1.0
        for name, column_range in ranges.items():
            bare = name.split(".", 1)[1] if "." in name else name
            if bare not in self.columns:
                continue
            selectivity *= self.column(bare).range_selectivity(column_range)
        return selectivity


def build_column_stats(values: Sequence[object]) -> ColumnStats:
    """Compute stats for one column's values."""
    n_rows = len(values)
    non_null = [v for v in values if v is not None]
    n_nulls = n_rows - len(non_null)
    if not non_null:
        return ColumnStats(n_rows, n_nulls, 0, None, None)
    numeric = isinstance(non_null[0], (int, float)) and not isinstance(
        non_null[0], bool)
    if numeric:
        arr = np.asarray(non_null, dtype=np.float64)
        n_distinct = len(np.unique(arr))
        bounds = _equidepth_bounds(arr)
        return ColumnStats(
            n_rows, n_nulls, n_distinct,
            float(arr.min()), float(arr.max()), bounds,
        )
    uniques = set(non_null)
    return ColumnStats(n_rows, n_nulls, len(uniques),
                       min(non_null), max(non_null))


def _equidepth_bounds(arr: np.ndarray) -> List[float]:
    if len(arr) == 0:
        return []
    quantiles = np.linspace(0, 1, HISTOGRAM_BUCKETS + 1)[1:]
    return np.quantile(arr, quantiles).tolist()


def build_table_stats(table: Table,
                      sample_rows: Optional[int] = None,
                      seed: int = 42) -> TableStats:
    """Build statistics for ``table``.

    ``sample_rows`` caps how many rows are inspected (uniform random
    sample); counts are scaled back to the full table like a real
    statistics build. None inspects everything.
    """
    rows = [row for _, row in table.iter_rows()]
    n = len(rows)
    scale = 1.0
    if sample_rows is not None and n > sample_rows:
        rng = np.random.default_rng(seed)
        picks = rng.choice(n, size=sample_rows, replace=False)
        rows = [rows[i] for i in picks]
        scale = n / sample_rows
    columns: Dict[str, ColumnStats] = {}
    for ordinal, column in enumerate(table.schema.columns):
        values = [row[ordinal] for row in rows]
        stats = build_column_stats(values)
        if scale != 1.0:
            stats.n_rows = n
            stats.n_nulls = int(stats.n_nulls * scale)
            stats.n_distinct = _scale_distinct(values, stats.n_distinct,
                                               n)
        columns[column.name] = stats
    return TableStats(row_count=n, columns=columns)


def _scale_distinct(sample_values: Sequence[object], sample_distinct: int,
                    total_rows: int) -> int:
    """Scale a sampled distinct count to the full table.

    Only values seen exactly once in the sample are scaled up (the GEE
    idea the paper adapts in Section 4.4): a low-cardinality column whose
    every value repeats in the sample keeps its observed distinct count,
    avoiding the n_nationkey-style overestimation.
    """
    counts: Dict[object, int] = {}
    for value in sample_values:
        counts[value] = counts.get(value, 0) + 1
    f1 = sum(1 for c in counts.values() if c == 1)
    repeated = sample_distinct - f1
    if len(sample_values) == 0:
        return sample_distinct
    factor = total_rows / len(sample_values)
    return min(total_rows, int(f1 * factor + repeated))
