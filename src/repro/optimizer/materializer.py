"""Materializer: convert an optimizer plan into executable operators.

Only plans whose leaves reference *materialized* index descriptors can be
materialized; attempting to execute a plan that touches a hypothetical
index raises — exactly the boundary between DTA's what-if costing and
real execution.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.errors import OptimizerError
from repro.engine.expressions import ColumnRef
from repro.engine.operators import (
    BTreeSeek,
    ColumnstoreScan,
    Filter,
    HashAggregate,
    HashJoin,
    HeapScan,
    IndexNestedLoopJoin,
    MergeJoin,
    PhysicalOperator,
    Project,
    SecondaryBTreeSeek,
    Sort,
    SortKey,
    StreamAggregate,
    Top,
)
from repro.optimizer.plans import (
    KIND_BTREE,
    KIND_CSI,
    KIND_HEAP,
    AccessPathNode,
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanNode,
    PlannedQuery,
    ProjectNode,
    SortNode,
    TopNode,
)
from repro.storage.database import Database


class Materializer:
    """Builds operator trees from plans for one database."""

    def __init__(self, database: Database):
        self.database = database

    def materialize(self, planned: PlannedQuery) -> PhysicalOperator:
        """Build the executable operator tree for a planned query."""
        if planned.uses_hypothetical:
            raise OptimizerError(
                "plan references hypothetical indexes and cannot execute")
        return self._build(planned.root)

    def _build(self, node: PlanNode) -> PhysicalOperator:
        op = self._build_op(node)
        # Pair the operator with the plan node it came from so EXPLAIN
        # ANALYZE can print estimated vs actual rows side by side.
        op.plan_node = node
        return op

    def _build_op(self, node: PlanNode) -> PhysicalOperator:
        if isinstance(node, AccessPathNode):
            return self._build_access(node)
        if isinstance(node, FilterNode):
            op = Filter(self._build(node.inputs[0]), node.predicate,
                        dop=node.dop)
            return op
        if isinstance(node, JoinNode):
            return self._build_join(node)
        if isinstance(node, AggregateNode):
            child = self._build(node.inputs[0])
            cls = StreamAggregate if node.strategy == "stream" else HashAggregate
            return cls(child, node.group_by, node.aggregates, dop=node.dop)
        if isinstance(node, SortNode):
            child = self._build(node.inputs[0])
            keys = [SortKey(name, descending) for name, descending in node.keys]
            return Sort(child, keys, dop=node.dop)
        if isinstance(node, TopNode):
            child = self._build(node.inputs[0])
            if isinstance(child, Sort):
                # TOP directly over a sort: let the sort select the
                # first N rows in code space (argpartition) instead of
                # fully ordering the input. Same rows, same modeled
                # costs — wall-clock only.
                child.limit = node.limit
            return Top(child, node.limit, dop=node.dop)
        if isinstance(node, ProjectNode):
            child = self._build(node.inputs[0])
            outputs = [(name, ColumnRef(source))
                       for name, source in node.outputs]
            return Project(child, outputs, dop=node.dop)
        raise OptimizerError(f"cannot materialize {type(node).__name__}")

    def _build_access(self, node: AccessPathNode) -> PhysicalOperator:
        descriptor = node.descriptor
        table = self.database.table(descriptor.table_name)
        prefix = f"{node.alias}."
        if descriptor.kind == KIND_HEAP:
            return HeapScan(table, node.columns, residual=node.residual,
                            prefix=prefix, dop=node.dop)
        if descriptor.kind == KIND_BTREE:
            key_ranges = node.seek_ranges
            if key_ranges is None and node.ranges:
                leading = node.ranges.get(descriptor.key_columns[0])
                key_ranges = [leading] if leading is not None else None
            if descriptor.is_primary:
                return BTreeSeek(table, node.columns, key_ranges=key_ranges,
                                 residual=node.residual, prefix=prefix,
                                 dop=node.dop)
            index = descriptor.physical
            return SecondaryBTreeSeek(
                table, index, node.columns, key_ranges=key_ranges,
                residual=node.residual, prefix=prefix, dop=node.dop)
        if descriptor.kind == KIND_CSI:
            index = descriptor.physical
            pushdown = None
            if node.ranges:
                pushdown = {
                    column: column_range.as_bounds()
                    for column, column_range in node.ranges.items()
                }
            return ColumnstoreScan(
                table, index, node.columns, pushdown_ranges=pushdown,
                residual=node.residual, prefix=prefix, dop=node.dop)
        raise OptimizerError(f"unknown descriptor kind {descriptor.kind!r}")

    def _build_join(self, node: JoinNode) -> PhysicalOperator:
        if node.method == "hash":
            build = self._build(node.inputs[0])
            probe = self._build(node.inputs[1])
            return HashJoin(build, probe, node.left_keys, node.right_keys,
                            dop=node.dop)
        if node.method == "merge":
            left = self._build(node.inputs[0])
            right = self._build(node.inputs[1])
            return MergeJoin(left, right, node.left_keys, node.right_keys,
                             dop=node.dop)
        if node.method == "inl":
            outer = self._build(node.inputs[0])
            inner = node.inputs[1]
            if not isinstance(inner, AccessPathNode):
                raise OptimizerError("INL join inner must be an access path")
            table = self.database.table(inner.descriptor.table_name)
            index = inner.descriptor.physical
            return IndexNestedLoopJoin(
                outer, table, index,
                outer_keys=node.left_keys,
                inner_columns=inner.columns,
                inner_prefix=f"{inner.alias}.",
                residual=inner.residual,
                dop=node.dop,
            )
        raise OptimizerError(f"unknown join method {node.method!r}")
