"""Optimizer cost estimation.

Estimates mirror the executor's charging formulas so that — up to
cardinality-estimation error — optimizer-estimated cost tracks measured
cost. This mirrors how DTA relies on the server's cost model: "DTA uses a
cost-based search — its objective is to find the configuration with the
lowest optimizer-estimated cost" (Section 4.1).

All costs are in milliseconds of serial-equivalent work (CPU plus, for
cold planning, I/O wait). The unit of *comparison* is what matters to the
advisor, not the absolute value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine.costs import MB, CostModel
from repro.optimizer.plans import (
    KIND_BTREE,
    KIND_CSI,
    KIND_HEAP,
    IndexDescriptor,
)


@dataclass
class CostingOptions:
    """Knobs for one planning session."""

    cost_model: CostModel
    cold: bool = False
    memory_grant_bytes: Optional[int] = None
    concurrent_queries: int = 1
    #: Kimura et al.-style compression-aware costing: when True,
    #: :func:`cost_csi_scan` scales its per-segment decode CPU by the
    #: encoding each column was actually (or hypothetically) compressed
    #: with. Off by default so existing plans and figures are
    #: numerically unchanged.
    compression_aware: bool = False

    @property
    def grant(self) -> int:
        """Effective working-memory grant in bytes."""
        if self.memory_grant_bytes is not None:
            return self.memory_grant_bytes
        return self.cost_model.default_memory_grant_bytes


def choose_dop(options: CostingOptions, rows_processed: float) -> int:
    """The planner's parallelism decision (mirrors the executor)."""
    cm = options.cost_model
    if rows_processed < cm.parallel_row_threshold:
        return 1
    available = max(1, cm.max_dop // max(1, options.concurrent_queries))
    return available


def parallel_adjusted(options: CostingOptions, work_ms: float,
                      dop: int) -> float:
    """Elapsed-equivalent cost of ``work_ms`` run at ``dop``."""
    cm = options.cost_model
    if dop <= 1:
        return work_ms
    return work_ms * cm.parallel_cpu_overhead / dop + cm.parallel_startup_ms


def cost_heap_scan(options: CostingOptions, descriptor: IndexDescriptor,
                   table_rows: float, row_bytes: int,
                   out_rows: float) -> float:
    """Estimated cost of a full heap scan."""
    cm = options.cost_model
    dop = choose_dop(options, table_rows)
    cpu = table_rows * cm.row_cpu_ms_per_row
    cost = parallel_adjusted(options, cpu, dop)
    if options.cold:
        cost += (table_rows * row_bytes / MB) * cm.btree_scan_io_ms_per_mb
    return cost


def cost_btree_access(options: CostingOptions, descriptor: IndexDescriptor,
                      rows_scanned: float, entry_bytes: int,
                      lookup_rows: float = 0.0,
                      tree_height: int = 3) -> float:
    """Seek or scan of a B+ tree touching ``rows_scanned`` entries, plus
    optional base-table lookups for ``lookup_rows`` rows."""
    cm = options.cost_model
    dop = choose_dop(options, rows_scanned)
    cpu = cm.seek_cpu_ms + rows_scanned * cm.row_cpu_ms_per_row
    cpu += lookup_rows * (cm.seek_cpu_ms + cm.row_cpu_ms_per_row)
    cost = parallel_adjusted(options, cpu, dop)
    if options.cold:
        cost += tree_height * cm.random_io_ms_per_page
        cost += (rows_scanned * entry_bytes / MB) * cm.btree_scan_io_ms_per_mb
        cost += lookup_rows * cm.random_io_ms_per_page
    return cost


def csi_read_fraction(descriptor: IndexDescriptor,
                      range_column: Optional[str],
                      selectivity: float) -> float:
    """Fraction of row groups a CSI scan must read after elimination.

    Without a data-order guarantee, min/max ranges of every segment span
    nearly the full domain and nothing is eliminated. When the CSI was
    built over data sorted on the ranged column, eliminated fraction ~
    (1 - selectivity) plus one boundary segment (Figure 2).
    """
    if range_column is None:
        return 1.0
    if descriptor.sorted_on == range_column:
        # One partially-overlapping boundary group always remains.
        return min(1.0, selectivity + 0.02)
    return 1.0


#: Relative per-segment decode CPU by encoding, used only when
#: ``options.compression_aware`` is set (Kimura et al., "Compression
#: Aware Physical Database Design"): compression is not free to *read*
#: either, and the relative cost differs by scheme. RLE decodes a
#: handful of runs (cheapest), raw is a memcpy, bit-packing pays an
#: unpack pass, and dictionary segments pay the gather through the
#: dictionary (the 1.0 baseline — it is what ``segment_decode_cpu_ms``
#: was calibrated against).
ENCODING_DECODE_FACTOR: Dict[str, float] = {
    "rle": 0.35,
    "raw": 0.55,
    "bitpack": 0.80,
    "dict": 1.00,
}


def cost_csi_scan(options: CostingOptions, descriptor: IndexDescriptor,
                  table_rows: float, columns_read: Dict[str, int],
                  read_fraction: float = 1.0,
                  encodings: Optional[Dict[str, str]] = None) -> float:
    """Columnstore scan reading only ``columns_read`` (name -> bytes).

    ``encodings`` maps column name -> compression scheme ("rle",
    "bitpack", "dict", "raw"). It participates only when
    ``options.compression_aware`` is set: the segment-decode CPU term is
    then charged per column, scaled by :data:`ENCODING_DECODE_FACTOR`.
    With the flag off (the default) or no encodings supplied, the
    formula is numerically identical to the encoding-oblivious model.
    """
    cm = options.cost_model
    rows_read = table_rows * read_fraction
    dop = choose_dop(options, rows_read)
    segments_per_column = max(1.0, rows_read / 32768.0)
    cpu = rows_read * cm.batch_cpu_ms_per_row
    if options.compression_aware and encodings:
        for column in (columns_read or {"": 0}):
            factor = ENCODING_DECODE_FACTOR.get(
                encodings.get(column, "dict"), 1.0)
            cpu += segments_per_column * cm.segment_decode_cpu_ms * factor
    else:
        n_segments = segments_per_column * max(1, len(columns_read))
        cpu += n_segments * cm.segment_decode_cpu_ms
    cost = parallel_adjusted(options, cpu, dop)
    if options.cold:
        read_bytes = sum(columns_read.values()) * read_fraction
        cost += (read_bytes / MB) * cm.seq_io_ms_per_mb
    return cost


def cost_filter(options: CostingOptions, rows: float, mode: str,
                dop: int) -> float:
    """Estimated cost of a filter over ``rows`` rows."""
    cm = options.cost_model
    per_row = (cm.batch_cpu_ms_per_row if mode == "batch"
               else cm.row_cpu_ms_per_row)
    return parallel_adjusted(options, rows * per_row, dop)


def cost_hash_join(options: CostingOptions, build_rows: float,
                   probe_rows: float, out_rows: float, mode: str,
                   build_row_bytes: int = 64) -> float:
    """Estimated cost of a hash join (with spill when over grant)."""
    cm = options.cost_model
    dop = choose_dop(options, build_rows + probe_rows)
    probe_scale = (cm.batch_cpu_ms_per_row / cm.row_cpu_ms_per_row
                   if mode == "batch" else 1.0)
    cpu = build_rows * cm.hash_cpu_ms_per_row
    cpu += probe_rows * cm.hash_cpu_ms_per_row * probe_scale
    cpu += out_rows * cm.row_cpu_ms_per_row * 0.25
    cost = parallel_adjusted(options, cpu, dop)
    build_bytes = build_rows * (build_row_bytes + cm.hash_entry_overhead_bytes)
    if build_bytes > options.grant:
        spill_mb = (build_bytes + probe_rows * build_row_bytes) / MB
        cost += spill_mb * (cm.write_io_ms_per_mb + cm.seq_io_ms_per_mb)
        cost *= cm.spill_cpu_multiplier
    return cost


def cost_merge_join(options: CostingOptions, left_rows: float,
                    right_rows: float, out_rows: float) -> float:
    """Estimated cost of a merge join over sorted inputs."""
    cm = options.cost_model
    cpu = (left_rows + right_rows) * cm.row_cpu_ms_per_row
    cpu += out_rows * cm.row_cpu_ms_per_row * 0.25
    return cpu


def cost_inl_join(options: CostingOptions, outer_rows: float,
                  matches_per_outer: float, inner_lookup: bool,
                  inner_height: int = 3) -> float:
    """Estimated cost of an index nested-loop join."""
    cm = options.cost_model
    per_probe = cm.seek_cpu_ms + matches_per_outer * cm.row_cpu_ms_per_row
    if inner_lookup:
        per_probe += matches_per_outer * (cm.seek_cpu_ms + cm.row_cpu_ms_per_row)
    cost = outer_rows * per_probe
    if options.cold:
        cost += outer_rows * inner_height * cm.random_io_ms_per_page * 0.3
        if inner_lookup:
            cost += outer_rows * matches_per_outer * cm.random_io_ms_per_page
    return cost


def cost_hash_aggregate(options: CostingOptions, input_rows: float,
                        n_groups: float, mode: str, dop: int,
                        group_key_bytes: int = 16,
                        n_aggregates: int = 1) -> tuple:
    """Returns (cost, spill_expected)."""
    cm = options.cost_model
    hash_scale = (cm.batch_cpu_ms_per_row / cm.row_cpu_ms_per_row
                  if mode == "batch" else 1.0)
    cpu = input_rows * cm.hash_cpu_ms_per_row * hash_scale
    memory = n_groups * (group_key_bytes + n_aggregates * 24
                         + cm.hash_entry_overhead_bytes)
    spill = memory > options.grant
    cost = parallel_adjusted(options, cpu, dop)
    if spill:
        spill_bytes = input_rows * (group_key_bytes + n_aggregates * 8)
        cost *= cm.spill_cpu_multiplier
        cost += (spill_bytes / MB) * (cm.write_io_ms_per_mb + cm.seq_io_ms_per_mb)
    return cost, spill


def cost_stream_aggregate(options: CostingOptions, input_rows: float,
                          dop: int) -> float:
    """Estimated cost of a streaming aggregate."""
    cm = options.cost_model
    return parallel_adjusted(
        options, input_rows * cm.stream_agg_cpu_ms_per_row, dop)


def cost_sort(options: CostingOptions, rows: float, row_bytes: int,
              dop: int) -> tuple:
    """Returns (cost, spill_expected)."""
    cm = options.cost_model
    cpu = rows * max(1.0, math.log2(max(rows, 2))) * cm.sort_cpu_ms_per_row_log
    payload = rows * row_bytes
    spill = payload > options.grant
    cost = parallel_adjusted(options, cpu, dop)
    if spill:
        cost *= cm.spill_cpu_multiplier
        cost += (payload / MB) * (cm.write_io_ms_per_mb + cm.seq_io_ms_per_mb)
    return cost, spill


def btree_entry_bytes(descriptor: IndexDescriptor, row_bytes: int,
                      column_bytes: Dict[str, int]) -> int:
    """Leaf entry width of a B+ tree descriptor."""
    if descriptor.is_primary or descriptor.kind == KIND_HEAP:
        return row_bytes
    width = sum(column_bytes.get(c, 8) for c in descriptor.key_columns)
    width += sum(column_bytes.get(c, 8) for c in descriptor.included_columns)
    return width + 8
