"""Cost-based query optimizer.

Planning pipeline for a bound SELECT:

1. **Access path selection** per table: enumerate the table's indexes
   (materialized plus any hypothetical ones injected by a what-if
   session), derive sargable ranges from the table-local conjuncts, and
   cost heap scan vs B+ tree seek/scan (with bookmark lookups when not
   covering) vs columnstore scan (with segment-elimination credit when
   the CSI is sorted on the ranged column).
2. **Join ordering**: greedy left-deep construction starting from the
   smallest filtered input, choosing hash / merge / index-nested-loop per
   edge by estimated cost.
3. **Aggregation strategy**: streaming aggregate when the input ordering
   covers the GROUP BY prefix, hash aggregate otherwise — with an
   expected-spill penalty when the estimated hash table exceeds the
   memory grant (Figure 4's regime change).
4. **Sort avoidance**: ORDER BY satisfied by the input ordering skips the
   sort (Figure 3's design (c)).
5. **Row-goal**: TOP limits propagate into the final cost.

The same planner serves normal execution, what-if costing (hypothetical
descriptors), and DTA's configuration search.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import OptimizerError
from repro.engine.expressions import (
    ColumnRange,
    Expr,
    conjuncts,
    extract_column_ranges,
    make_and,
)
from repro.optimizer import cost_model as cm
from repro.optimizer.catalog import Catalog
from repro.optimizer.cost_model import CostingOptions
from repro.optimizer.plans import (
    KIND_BTREE,
    KIND_CSI,
    KIND_HEAP,
    AccessPathNode,
    AggregateNode,
    FilterNode,
    IndexDescriptor,
    JoinNode,
    PlanNode,
    PlannedQuery,
    ProjectNode,
    SortNode,
    TopNode,
)
from repro.sql.binder import BoundSelect, JoinEdge

#: A sargable predicate must be at least this selective (estimated
#: fraction of rows) before an unserved access path is reported to
#: ``dm_db_missing_index_details`` — scans over unselective predicates
#: are the right plan, not a missing index.
MISSING_INDEX_SELECTIVITY_THRESHOLD = 0.25


class Optimizer:
    """Plans bound SELECT statements against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        options: Optional[CostingOptions] = None,
        extra_indexes: Optional[Dict[str, List[IndexDescriptor]]] = None,
        design_override: Optional[Dict[str, List[IndexDescriptor]]] = None,
        telemetry=None,
    ):
        self.catalog = catalog
        self.options = options or CostingOptions(
            cost_model=catalog.database.cost_model)
        #: Hypothetical indexes to consider in addition to the real design.
        self.extra_indexes = extra_indexes or {}
        #: Full replacement design per table (what-if configurations).
        self.design_override = design_override or {}
        #: Optional :class:`~repro.storage.telemetry.Telemetry` sink for
        #: missing-index observations. The Executor passes the database's
        #: telemetry; what-if sessions and DTA leave it None so
        #: hypothetical probing never pollutes the DMVs.
        self.telemetry = telemetry

    # ------------------------------------------------------------ surface
    def optimize(self, bound: BoundSelect) -> PlannedQuery:
        """Plan a bound SELECT; returns the chosen plan and cost."""
        root = self._plan_joins(bound)
        root = self._plan_aggregation(bound, root)
        root = self._plan_order_and_top(bound, root)
        root = self._plan_projection(bound, root)
        uses_hypothetical = any(
            leaf.descriptor.hypothetical for leaf in root.leaves())
        return PlannedQuery(
            root=root, est_cost=root.est_cost, est_rows=root.est_rows,
            uses_hypothetical=uses_hypothetical,
        )

    def _indexes_for(self, table_name: str) -> List[IndexDescriptor]:
        if table_name in self.design_override:
            return list(self.design_override[table_name])
        indexes = list(self.catalog.indexes_for(table_name))
        indexes.extend(self.extra_indexes.get(table_name, []))
        return indexes

    # ---------------------------------------------------------- predicates
    def _split_local_predicates(self, bound: BoundSelect):
        """Partition WHERE conjuncts into per-alias and multi-alias sets."""
        local: Dict[str, List[Expr]] = {t.alias: [] for t in bound.tables}
        residual: List[Expr] = []
        for conj in conjuncts(bound.where):
            aliases = {
                name.split(".", 1)[0] for name in conj.columns()
            }
            if len(aliases) == 1:
                local[aliases.pop()].append(conj)
            else:
                residual.append(conj)
        return local, residual

    # --------------------------------------------------------- access paths
    def _plan_access_path(self, bound: BoundSelect, alias: str,
                          local_conjuncts: List[Expr]) -> AccessPathNode:
        bound_table = bound.table_by_alias(alias)
        table = bound_table.table
        stats = self.catalog.stats(table.name)
        table_rows = max(1, stats.row_count)
        needed = bound.referenced_columns(alias)
        if not needed:
            needed = [table.schema.columns[0].name]
        predicate = make_and(local_conjuncts)
        qualified_ranges = extract_column_ranges(predicate)
        # Strip 'alias.' for matching against index key columns.
        ranges: Dict[str, ColumnRange] = {
            name.split(".", 1)[1]: column_range
            for name, column_range in qualified_ranges.items()
        }
        selectivity = stats.selectivity(qualified_ranges)
        out_rows = max(1.0, table_rows * selectivity)
        column_bytes = self.catalog.column_bytes(table.name)
        row_bytes = self.catalog.row_bytes(table.name)

        best: Optional[AccessPathNode] = None
        for descriptor in self._indexes_for(table.name):
            node = self._cost_one_path(
                alias, descriptor, table_rows, row_bytes, column_bytes,
                needed, ranges, stats, predicate, out_rows)
            if node is None:
                continue
            if best is None or node.est_cost < best.est_cost:
                best = node
        if best is None:
            raise OptimizerError(
                f"no usable access path for table {table.name!r}")
        self._observe_missing_index(table, ranges, needed, selectivity, best)
        return best

    def _observe_missing_index(self, table, ranges, needed, selectivity,
                               best) -> None:
        """Report to ``dm_db_missing_index_details`` when the chosen path
        settles for a scan despite a selective sargable predicate that no
        materialized B+ tree can seek.

        Observation-only (never affects the plan or its cost), and active
        only for real executions: what-if sessions plan with
        ``extra_indexes``/``design_override`` and no telemetry, so
        hypothetical probing records nothing.
        """
        if self.telemetry is None or self.extra_indexes or self.design_override:
            return
        if not ranges or best.access == "seek":
            return
        if selectivity > MISSING_INDEX_SELECTIVITY_THRESHOLD:
            return
        database = self.catalog.database
        if database.is_system_view(table.name):
            return
        # Served when any materialized B+ tree can seek on a ranged
        # leading key column — choosing a scan anyway means the index
        # exists but lost on cost, which is not a missing index.
        for descriptor in self.catalog.indexes_for(table.name):
            if descriptor.kind != KIND_BTREE or not descriptor.key_columns:
                continue
            if descriptor.key_columns[0] in ranges:
                return
        equality = tuple(sorted(
            c for c, r in ranges.items() if r.is_point))
        inequality = tuple(sorted(
            c for c, r in ranges.items() if not r.is_point))
        included = tuple(
            c for c in needed if c not in equality and c not in inequality)
        self.telemetry.record_missing_index(
            table.name, equality, inequality, included,
            selectivity=selectivity)

    def _cost_one_path(self, alias, descriptor, table_rows, row_bytes,
                       column_bytes, needed, ranges, stats, predicate,
                       out_rows) -> Optional[AccessPathNode]:
        options = self.options
        if descriptor.kind == KIND_HEAP:
            node = AccessPathNode(alias, descriptor, "scan", list(needed),
                                  ranges=None, residual=predicate)
            node.est_cost = cm.cost_heap_scan(
                options, descriptor, table_rows, row_bytes, out_rows)
            node.est_rows = out_rows
            node.dop = cm.choose_dop(options, table_rows)
            return node

        if descriptor.kind == KIND_BTREE:
            # Composite-key sargability: consume point ranges along the
            # key prefix, optionally ending with one non-point range.
            seek_ranges = []
            seek_fraction = 1.0
            for key_column in descriptor.key_columns:
                key_range = ranges.get(key_column)
                if key_range is None:
                    break
                seek_ranges.append(key_range)
                if key_column in stats.columns:
                    seek_fraction *= stats.column(
                        key_column).range_selectivity(key_range)
                if not key_range.is_point:
                    break
            if seek_ranges:
                rows_scanned = max(1.0, table_rows * seek_fraction)
                access = "seek"
            else:
                if not descriptor.is_primary and not descriptor.covers(needed):
                    # A full scan of a non-covering secondary with lookups
                    # is never competitive; skip it.
                    return None
                rows_scanned = float(table_rows)
                access = "scan"
            covering = descriptor.covers(needed)
            lookup_rows = 0.0 if covering else rows_scanned
            entry_bytes = cm.btree_entry_bytes(
                descriptor, row_bytes, column_bytes)
            height = max(2, int(math.log(max(table_rows, 2), 64)) + 1)
            node = AccessPathNode(
                alias, descriptor, access, list(needed),
                ranges=(
                    {c: r for c, r in zip(descriptor.key_columns,
                                          seek_ranges)}
                    if seek_ranges else None),
                residual=predicate, needs_lookup=not covering,
            )
            node.seek_ranges = seek_ranges or None
            node.est_cost = cm.cost_btree_access(
                options, descriptor, rows_scanned, entry_bytes,
                lookup_rows=lookup_rows, tree_height=height)
            node.est_rows = out_rows
            node.dop = cm.choose_dop(options, rows_scanned)
            return node

        if descriptor.kind == KIND_CSI:
            if not descriptor.covers(needed):
                return None
            range_column = None
            selectivity = 1.0
            for column, column_range in ranges.items():
                if descriptor.sorted_on == column:
                    range_column = column
                    selectivity = stats.column(column).range_selectivity(
                        column_range)
                    break
            read_fraction = cm.csi_read_fraction(
                descriptor, range_column, selectivity)
            read_bytes = {
                c: descriptor.column_sizes.get(
                    c, table_rows * column_bytes.get(c, 8))
                for c in needed
            }
            node = AccessPathNode(
                alias, descriptor, "scan", list(needed),
                ranges=ranges or None, residual=predicate)
            node.est_cost = cm.cost_csi_scan(
                options, descriptor, table_rows, read_bytes, read_fraction,
                encodings=descriptor.column_encodings or None)
            node.est_rows = out_rows
            node.dop = cm.choose_dop(options, table_rows * read_fraction)
            return node

        return None

    # --------------------------------------------------------------- joins
    def _plan_joins(self, bound: BoundSelect) -> PlanNode:
        local, residual = self._split_local_predicates(bound)
        paths = {
            alias: self._plan_access_path(bound, alias, local[alias])
            for alias in (t.alias for t in bound.tables)
        }
        if len(paths) == 1:
            root = next(iter(paths.values()))
        else:
            root = self._greedy_join_order(bound, paths)
        post = make_and(residual)
        if post is not None:
            node = FilterNode(root, post)
            node.est_rows = max(1.0, root.est_rows * 0.3)
            node.est_cost = root.est_cost + cm.cost_filter(
                self.options, root.est_rows, root.mode, root.dop)
            node.dop = root.dop
            root = node
        return root

    def _greedy_join_order(self, bound: BoundSelect,
                           paths: Dict[str, AccessPathNode]) -> PlanNode:
        remaining = dict(paths)
        # Start from the most selective (fewest estimated rows) input.
        start = min(remaining, key=lambda a: (remaining[a].est_rows,
                                              remaining[a].est_cost))
        current: PlanNode = remaining.pop(start)
        joined = {start}
        while remaining:
            candidates = []
            for alias, path in remaining.items():
                edges = _edges_between(bound.join_edges, joined, alias)
                if not edges:
                    continue
                join = self._best_join(bound, current, alias, path, edges)
                candidates.append((join.est_cost, alias, join))
            if not candidates:
                # Disconnected table: cartesian via hash join on a dummy
                # equality is not supported; pick any remaining and
                # cross-hash-join on first edge-less pairing.
                raise OptimizerError(
                    "query's join graph is disconnected; cross joins are "
                    "not supported")
            candidates.sort(key=lambda c: c[0])
            _, alias, join = candidates[0]
            current = join
            joined.add(alias)
            del remaining[alias]
        return current

    def _best_join(self, bound: BoundSelect, current: PlanNode, alias: str,
                   path: AccessPathNode, edges: List[JoinEdge]) -> JoinNode:
        options = self.options
        left_keys = []
        right_keys = []
        for edge in edges:
            if edge.right_alias == alias:
                left_keys.append(edge.left_qualified)
                right_keys.append(edge.right_qualified)
            else:
                left_keys.append(edge.right_qualified)
                right_keys.append(edge.left_qualified)

        table = bound.table_by_alias(alias).table
        stats = self.catalog.stats(table.name)
        join_col = right_keys[0].split(".", 1)[1]
        distinct = max(1, stats.column(join_col).n_distinct
                       if join_col in stats.columns else 1)
        out_rows = max(1.0, current.est_rows * path.est_rows / max(
            distinct, 1))
        out_rows = min(out_rows, current.est_rows * max(
            1.0, path.est_rows))

        candidates: List[JoinNode] = []

        # Hash join: build on the smaller side.
        if path.est_rows <= current.est_rows:
            build, probe = path, current
            build_keys, probe_keys = right_keys, left_keys
        else:
            build, probe = current, path
            build_keys, probe_keys = left_keys, right_keys
        hash_node = JoinNode("hash", build, probe, build_keys, probe_keys)
        hash_node.est_rows = out_rows
        hash_node.est_cost = (
            build.est_cost + probe.est_cost
            + cm.cost_hash_join(options, build.est_rows, probe.est_rows,
                                out_rows, probe.mode))
        hash_node.dop = max(build.dop, probe.dop)
        candidates.append(hash_node)

        # Index nested loop: inner B+ tree keyed on the join column.
        inl = self._try_inl(bound, current, alias, left_keys, right_keys,
                            out_rows, stats)
        if inl is not None:
            candidates.append(inl)

        # Merge join when both orderings already match the join keys.
        left_order = getattr(current, "output_ordering", [])
        right_order = getattr(path, "output_ordering", [])
        if (list(left_order[:len(left_keys)]) == left_keys
                and list(right_order[:len(right_keys)]) == right_keys):
            merge = JoinNode("merge", current, path, left_keys, right_keys)
            merge.est_rows = out_rows
            merge.est_cost = (
                current.est_cost + path.est_cost
                + cm.cost_merge_join(options, current.est_rows,
                                     path.est_rows, out_rows))
            merge.dop = max(current.dop, path.dop)
            candidates.append(merge)

        return min(candidates, key=lambda node: node.est_cost)

    def _try_inl(self, bound: BoundSelect, current: PlanNode, alias: str,
                 left_keys: List[str], right_keys: List[str],
                 out_rows: float, stats) -> Optional[JoinNode]:
        if len(right_keys) != 1:
            return None
        table = bound.table_by_alias(alias).table
        join_col = right_keys[0].split(".", 1)[1]
        needed = bound.referenced_columns(alias)
        best: Optional[JoinNode] = None
        for descriptor in self._indexes_for(table.name):
            if descriptor.kind != KIND_BTREE:
                continue
            if not descriptor.key_columns or \
                    descriptor.key_columns[0] != join_col:
                continue
            covering = descriptor.covers(needed)
            matches = max(0.001, stats.row_count / max(
                1, stats.column(join_col).n_distinct))
            inner_path = AccessPathNode(
                alias, descriptor, "seek", list(needed),
                ranges=None, residual=None, needs_lookup=not covering)
            inner_path.est_rows = matches
            node = JoinNode("inl", current, inner_path,
                            left_keys, right_keys)
            node.est_rows = out_rows
            node.est_cost = current.est_cost + cm.cost_inl_join(
                self.options, current.est_rows, matches, not covering)
            node.dop = current.dop
            if best is None or node.est_cost < best.est_cost:
                best = node
        return best

    # ---------------------------------------------------------- aggregation
    def _plan_aggregation(self, bound: BoundSelect,
                          root: PlanNode) -> PlanNode:
        if not bound.is_aggregate:
            return root
        options = self.options
        ordering = getattr(root, "output_ordering", [])
        group_by = bound.group_by
        can_stream = bool(group_by) and list(
            ordering[:len(group_by)]) == list(group_by)
        n_groups = self._estimate_groups(bound, root)
        if can_stream:
            stream_cost = cm.cost_stream_aggregate(
                options, root.est_rows, root.dop)
            hash_cost, spill = cm.cost_hash_aggregate(
                options, root.est_rows, n_groups, root.mode, root.dop,
                n_aggregates=max(1, len(bound.aggregates)))
            if stream_cost <= hash_cost:
                node = AggregateNode("stream", root, group_by,
                                     bound.aggregates)
                node.est_cost = root.est_cost + stream_cost
            else:
                node = AggregateNode("hash", root, group_by,
                                     bound.aggregates, spill_expected=spill)
                node.est_cost = root.est_cost + hash_cost
        else:
            hash_cost, spill = cm.cost_hash_aggregate(
                options, root.est_rows, n_groups, root.mode, root.dop,
                n_aggregates=max(1, len(bound.aggregates)))
            node = AggregateNode("hash", root, group_by, bound.aggregates,
                                 spill_expected=spill)
            node.est_cost = root.est_cost + hash_cost
        node.est_rows = n_groups if group_by else 1.0
        node.dop = root.dop
        return node

    def _estimate_groups(self, bound: BoundSelect, root: PlanNode) -> float:
        if not bound.group_by:
            return 1.0
        total = 1.0
        for qualified in bound.group_by:
            alias, column = qualified.split(".", 1)
            table = bound.table_by_alias(alias).table
            stats = self.catalog.stats(table.name)
            if column in stats.columns:
                total *= max(1, stats.column(column).n_distinct)
        return min(total, max(1.0, root.est_rows))

    # --------------------------------------------------------- order / top
    def _plan_order_and_top(self, bound: BoundSelect,
                            root: PlanNode) -> PlanNode:
        options = self.options
        if bound.order_by:
            ordering = getattr(root, "output_ordering", [])
            wanted = [name for name, _ in bound.order_by]
            any_desc = any(desc for _, desc in bound.order_by)
            already = (not any_desc
                       and list(ordering[:len(wanted)]) == wanted)
            if not already:
                row_bytes = max(16, 12 * len(root.output_columns))
                cost, spill = cm.cost_sort(
                    options, root.est_rows, row_bytes, root.dop)
                node = SortNode(root, list(bound.order_by),
                                spill_expected=spill)
                node.est_rows = root.est_rows
                node.est_cost = root.est_cost + cost
                node.dop = root.dop
                root = node
        if bound.top is not None:
            node = TopNode(root, bound.top)
            node.est_rows = min(root.est_rows, bound.top)
            node.est_cost = root.est_cost
            node.dop = root.dop
            root = node
        return root

    def _plan_projection(self, bound: BoundSelect,
                         root: PlanNode) -> PlanNode:
        outputs = [(out.name, out.source) for out in bound.outputs]
        node = ProjectNode(root, outputs)
        node.est_rows = root.est_rows
        node.est_cost = root.est_cost
        node.dop = root.dop
        return node


def _edges_between(edges: Sequence[JoinEdge], joined: set,
                   alias: str) -> List[JoinEdge]:
    out = []
    for edge in edges:
        if edge.left_alias in joined and edge.right_alias == alias:
            out.append(edge)
        elif edge.right_alias in joined and edge.left_alias == alias:
            out.append(edge)
    return out
