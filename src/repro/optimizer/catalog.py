"""Catalog: descriptor views of the physical design plus statistics cache.

The catalog is the optimizer's window onto the database. It turns the
physical structures on each table into :class:`IndexDescriptor` metadata,
caches :class:`TableStats`, and merges in hypothetical descriptors when a
what-if session is active.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import CatalogError
from repro.optimizer.plans import (
    KIND_BTREE,
    KIND_CSI,
    KIND_HEAP,
    IndexDescriptor,
)
from repro.optimizer.statistics import TableStats, build_table_stats
from repro.storage.btree import PrimaryBTreeIndex, SecondaryBTreeIndex
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.database import Database
from repro.storage.heap import HeapFile
from repro.storage.table import Table


def describe_physical_index(table: Table, index) -> IndexDescriptor:
    """Build a descriptor for a materialized structure."""
    if isinstance(index, HeapFile):
        return IndexDescriptor(
            name=index.name, table_name=table.name, kind=KIND_HEAP,
            is_primary=True, size_bytes=index.size_bytes(), physical=index,
        )
    if isinstance(index, PrimaryBTreeIndex):
        return IndexDescriptor(
            name=index.name, table_name=table.name, kind=KIND_BTREE,
            is_primary=True, key_columns=list(index.key_columns),
            size_bytes=index.size_bytes(), physical=index,
        )
    if isinstance(index, SecondaryBTreeIndex):
        return IndexDescriptor(
            name=index.name, table_name=table.name, kind=KIND_BTREE,
            is_primary=False, key_columns=list(index.key_columns),
            included_columns=list(index.included_columns),
            size_bytes=index.size_bytes(), physical=index,
        )
    if isinstance(index, ColumnstoreIndex):
        sorted_on = _detect_sorted_column(index)
        return IndexDescriptor(
            name=index.name, table_name=table.name, kind=KIND_CSI,
            is_primary=index.is_primary, csi_columns=list(index.columns),
            size_bytes=index.size_bytes(), column_sizes=index.column_sizes(),
            column_encodings=index.column_encodings(),
            sorted_on=sorted_on, physical=index,
        )
    raise CatalogError(f"unknown index type {type(index).__name__}")


def _detect_sorted_column(index: ColumnstoreIndex) -> Optional[str]:
    """Detect a column whose per-segment [min, max] ranges are disjoint
    and increasing — the data-skipping property of a sorted build."""
    if index.n_rowgroups < 2:
        return None
    for column in index.columns:
        ranges = index.segment_ranges(column)
        if any(lo is None for lo, _ in ranges):
            continue
        disjoint = all(
            ranges[i][1] <= ranges[i + 1][0]
            for i in range(len(ranges) - 1)
        )
        if disjoint:
            return column
    return None


class Catalog:
    """Metadata and statistics provider for one database."""

    def __init__(self, database: Database,
                 stats_sample_rows: Optional[int] = 50_000):
        self.database = database
        self.stats_sample_rows = stats_sample_rows
        self._stats: Dict[str, TableStats] = {}
        #: modification counter observed when each table's stats built.
        self._stats_built_at: Dict[str, int] = {}
        self._design_cache: Dict[str, List[IndexDescriptor]] = {}

    # --------------------------------------------------------------- stats
    def stats(self, table_name: str) -> TableStats:
        """Aggregates for one statement text, or None if never seen."""
        table = self.database.table(table_name)
        if table_name in self._stats and self._stale(table, table_name):
            # Auto-update statistics: enough rows changed since the last
            # build that estimates would drift (SQL Server refreshes
            # after ~20% of rows are modified).
            del self._stats[table_name]
        if table_name not in self._stats:
            self._stats[table_name] = build_table_stats(
                table, sample_rows=self.stats_sample_rows)
            self._stats_built_at[table_name] = table.modification_counter
        return self._stats[table_name]

    def _stale(self, table: Table, table_name: str) -> bool:
        built_at = self._stats_built_at.get(table_name, 0)
        changed = table.modification_counter - built_at
        threshold = max(500, int(0.2 * max(1, table.row_count)))
        return changed > threshold

    def invalidate(self, table_name: Optional[str] = None) -> None:
        """Drop cached stats/design after DML or physical design changes."""
        if table_name is None:
            self._stats.clear()
            self._design_cache.clear()
        else:
            self._stats.pop(table_name, None)
            self._design_cache.pop(table_name, None)

    # -------------------------------------------------------------- design
    def indexes_for(self, table_name: str) -> List[IndexDescriptor]:
        """Descriptors for the table's current materialized design."""
        if table_name not in self._design_cache:
            table = self.database.table(table_name)
            self._design_cache[table_name] = [
                describe_physical_index(table, index)
                for index in table.all_indexes
            ]
        return self._design_cache[table_name]

    def column_bytes(self, table_name: str) -> Dict[str, int]:
        """Per-column on-disk widths for one table."""
        table = self.database.table(table_name)
        return {
            c.name: c.col_type.byte_width for c in table.schema.columns
        }

    def row_bytes(self, table_name: str) -> int:
        """Uncompressed row width of one table."""
        return self.database.table(table_name).schema.row_byte_width
