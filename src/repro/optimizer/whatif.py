"""What-if API: hypothetical index simulation for the tuning advisor.

Recreates the AutoAdmin what-if interface (Chaudhuri & Narasayya 1998)
with the paper's Section 4.2 extensions for columnstores:

* hypothetical indexes are metadata-only :class:`IndexDescriptor` entries
  the optimizer treats exactly like materialized ones;
* hypothetical **columnstore** descriptors carry *per-column sizes*
  (estimated by the advisor's size-estimation module), because the
  engine reads only the referenced columns of a CSI and the optimizer
  needs per-column sizes to cost that access.

A :class:`WhatIfSession` owns a set of hypothetical descriptors and can
cost any statement under a *configuration* — a chosen subset of real and
hypothetical indexes per table — returning the estimated plan without
executing anything.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import CatalogError, OptimizerError
from repro.optimizer.catalog import Catalog
from repro.optimizer.cost_model import CostingOptions
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import (
    KIND_BTREE,
    KIND_CSI,
    KIND_HEAP,
    IndexDescriptor,
    PlannedQuery,
)
from repro.sql.binder import Binder, BoundSelect
from repro.sql.parser import parse
from repro.storage.database import Database

_hypo_counter = itertools.count(1)


def hypothetical_btree(
    table_name: str,
    key_columns: Sequence[str],
    included_columns: Sequence[str] = (),
    n_rows: int = 0,
    column_bytes: Optional[Dict[str, int]] = None,
    name: Optional[str] = None,
) -> IndexDescriptor:
    """Create a hypothetical secondary B+ tree descriptor.

    Size is estimated from entry width x rows (B+ trees need no
    compression modelling, unlike CSIs).
    """
    column_bytes = column_bytes or {}
    entry = sum(column_bytes.get(c, 8) for c in key_columns)
    entry += sum(column_bytes.get(c, 8) for c in included_columns)
    entry += 8
    return IndexDescriptor(
        name=name or f"hypo_btree_{next(_hypo_counter)}",
        table_name=table_name, kind=KIND_BTREE, is_primary=False,
        key_columns=list(key_columns),
        included_columns=list(included_columns),
        size_bytes=int(n_rows * entry * 1.02), hypothetical=True,
    )


def hypothetical_columnstore(
    table_name: str,
    columns: Sequence[str],
    column_sizes: Dict[str, int],
    is_primary: bool = False,
    sorted_on: Optional[str] = None,
    name: Optional[str] = None,
    column_encodings: Optional[Dict[str, str]] = None,
) -> IndexDescriptor:
    """Create a hypothetical columnstore descriptor.

    ``column_sizes`` must contain the estimated compressed per-column
    sizes (from :mod:`repro.advisor.size_estimation`) — the what-if
    extension of Section 4.2. ``column_encodings`` optionally records
    the compression scheme each size estimate assumed, so Kimura-style
    compression-aware costing (``CostingOptions.compression_aware``)
    can charge decode CPU per scheme when costing the hypothetical.
    """
    missing = [c for c in columns if c not in column_sizes]
    if missing:
        raise CatalogError(
            f"hypothetical columnstore needs per-column sizes; missing "
            f"{missing}")
    return IndexDescriptor(
        name=name or f"hypo_csi_{next(_hypo_counter)}",
        table_name=table_name, kind=KIND_CSI, is_primary=is_primary,
        csi_columns=list(columns),
        size_bytes=sum(column_sizes[c] for c in columns),
        column_sizes=dict(column_sizes), sorted_on=sorted_on,
        column_encodings=dict(column_encodings or {}),
        hypothetical=True,
    )


@dataclass
class Configuration:
    """A candidate physical design: the descriptors visible per table.

    ``indexes`` maps table name to the full list of descriptors the
    optimizer may use for that table (always including some primary
    structure). Tables absent from the map keep their current design.

    ``allow_multiple_csi`` lifts the one-columnstore-per-table engine
    restriction (Section 4.5's multiple-projections extension).
    """

    indexes: Dict[str, List[IndexDescriptor]]
    allow_multiple_csi: bool = False

    def size_bytes(self) -> int:
        """Approximate on-disk size in bytes."""
        total = 0
        for descriptors in self.indexes.values():
            for descriptor in descriptors:
                if not descriptor.is_primary or descriptor.kind != KIND_HEAP:
                    total += descriptor.size_bytes
        return total

    def secondary_descriptors(self) -> List[IndexDescriptor]:
        """All non-primary descriptors across every table."""
        out = []
        for descriptors in self.indexes.values():
            out.extend(d for d in descriptors if not d.is_primary)
        return out

    def validate(self) -> None:
        """Enforce engine restrictions: at most one columnstore per table
        (unless ``allow_multiple_csi`` lifts the rule)."""
        for table_name, descriptors in self.indexes.items():
            csis = [d for d in descriptors if d.kind == KIND_CSI]
            if len(csis) > 1 and not self.allow_multiple_csi:
                raise CatalogError(
                    f"table {table_name!r}: only one columnstore index is "
                    f"allowed per table")
            primaries = [d for d in descriptors if d.is_primary]
            if len(primaries) != 1:
                raise CatalogError(
                    f"table {table_name!r}: exactly one primary structure "
                    f"required, got {len(primaries)}")


class WhatIfSession:
    """Costs statements under hypothetical configurations."""

    def __init__(self, database: Database, catalog: Optional[Catalog] = None,
                 options: Optional[CostingOptions] = None):
        self.database = database
        self.catalog = catalog or Catalog(database)
        self.options = options or CostingOptions(
            cost_model=database.cost_model)
        self.binder = Binder(database)

    # ------------------------------------------------------------- costing
    def cost_query(self, bound_or_sql, configuration: Configuration
                   ) -> PlannedQuery:
        """Optimizer-estimated plan for a query under ``configuration``."""
        configuration.validate()
        bound = self._bind(bound_or_sql)
        optimizer = Optimizer(
            self.catalog, self.options,
            design_override=configuration.indexes,
        )
        return optimizer.optimize(bound)

    def cost_query_current_design(self, bound_or_sql) -> PlannedQuery:
        """Cost a query against the materialized design only."""
        bound = self._bind(bound_or_sql)
        return Optimizer(self.catalog, self.options).optimize(bound)

    def _bind(self, bound_or_sql) -> BoundSelect:
        if isinstance(bound_or_sql, BoundSelect):
            return bound_or_sql
        bound = self.binder.bind(parse(bound_or_sql))
        if not isinstance(bound, BoundSelect):
            raise OptimizerError("what-if costing supports SELECTs")
        return bound

    # ----------------------------------------------------- configurations
    def current_configuration(self) -> Configuration:
        """Configuration mirroring the materialized design."""
        indexes = {
            table.name: list(self.catalog.indexes_for(table.name))
            for table in self.database.tables()
        }
        return Configuration(indexes=indexes)

    def configuration_with(
        self,
        extra: Iterable[IndexDescriptor],
        drop_secondary: bool = False,
    ) -> Configuration:
        """Current design plus ``extra`` descriptors (optionally dropping
        existing secondary indexes first)."""
        config = self.current_configuration()
        if drop_secondary:
            for table_name in config.indexes:
                config.indexes[table_name] = [
                    d for d in config.indexes[table_name] if d.is_primary
                ]
        for descriptor in extra:
            config.indexes.setdefault(descriptor.table_name, []).append(
                descriptor)
        return config
