"""Reporting helpers: ASCII tables, speedup histograms, crossovers.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent across benches.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Figure 9/11 bucket upper bounds; the final bucket is "> 10".
SPEEDUP_BUCKETS = (0.5, 0.8, 1.2, 1.5, 2.0, 5.0, 10.0)
SPEEDUP_BUCKET_LABELS = ("0.5", "0.8", "1.2", "1.5", "2", "5", "10", ">10")


def speedup_histogram(speedups: Iterable[float]) -> List[int]:
    """Bucket speedup factors the way Figures 9 and 11 do.

    Bucket i counts speedups <= SPEEDUP_BUCKETS[i] (and greater than the
    previous bound); the last bucket counts speedups > 10.
    """
    counts = [0] * (len(SPEEDUP_BUCKETS) + 1)
    for speedup in speedups:
        for i, bound in enumerate(SPEEDUP_BUCKETS):
            if speedup <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    return counts


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width ASCII table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_histogram(title: str, counts: Sequence[int]) -> str:
    """Render a Figure 9-style speedup histogram."""
    rows = [(label, count, "#" * count)
            for label, count in zip(SPEEDUP_BUCKET_LABELS, counts)]
    return format_table(["speedup<=", "queries", ""], rows, title=title)


def format_segment_cache(cache, title: Optional[str] = None) -> str:
    """One-row table of a decoded-segment cache's counters.

    ``cache`` is a :class:`repro.storage.segment_cache.DecodedSegmentCache`;
    benches print this next to warm-vs-cold timings so figure output
    records how much decode work the cache absorbed.
    """
    stats = cache.stats
    row = (
        stats.hits, stats.misses, f"{stats.hit_ratio:.2f}",
        stats.evictions, stats.invalidations, len(cache),
        f"{cache.bytes_cached / (1024 * 1024):.2f}",
    )
    return format_table(
        ["hits", "misses", "hit ratio", "evictions", "invalidations",
         "segments", "MB cached"],
        [row], title=title,
    )


def find_crossover(
    x_values: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> Optional[float]:
    """First x where series A stops being cheaper than series B.

    Used for the Figure 1/2/13 crossover selectivities: interpolates
    (log-linearly on x when all x > 0) between the last grid point where
    ``a < b`` and the first where ``a >= b``.
    """
    if not (len(x_values) == len(series_a) == len(series_b)):
        raise ValueError("series must be equal length")
    previous = None
    for x, a, b in zip(x_values, series_a, series_b):
        if a >= b:
            if previous is None:
                return x
            px, pa, pb = previous
            gap_prev = pb - pa
            gap_here = a - b
            if gap_prev + gap_here <= 0:
                return x
            fraction = gap_prev / (gap_prev + gap_here)
            if px > 0 and x > 0:
                return math.exp(
                    math.log(px) + fraction * (math.log(x) - math.log(px)))
            return px + fraction * (x - px)
        previous = (x, a, b)
    return None


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of the positive values (NaN when empty)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return float("nan")
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))


def summarize_speedups(speedups: Sequence[float]) -> Dict[str, float]:
    """Min/median/geomean/max and >10x count of speedups."""
    ordered = sorted(speedups)
    if not ordered:
        return {}
    return {
        "min": ordered[0],
        "median": ordered[len(ordered) // 2],
        "geomean": geometric_mean(ordered),
        "max": ordered[-1],
        "over_10x": sum(1 for s in ordered if s > 10),
    }
