"""Workload factories for the end-to-end evaluation (Section 5).

Each factory builds a fresh database plus query list for one of the
paper's read-only workloads: TPC-DS (scaled) and the five synthesized
customer-workload analogs. Fresh copies are required because design
evaluation mutates the physical design.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench.figure9 import give_all_tables_primary_btrees
from repro.storage.database import Database
from repro.workloads.customer import CUSTOMER_SPECS, generate_customer
from repro.workloads.tpcds import generate_queries, generate_tpcds

TPCDS_SCALE = 0.5
TPCDS_QUERIES = 97


def tpcds_factory() -> Tuple[Database, List[str]]:
    """Fresh TPC-DS database + its 97-query workload."""
    database = Database("tpcds")
    generate_tpcds(database, scale=TPCDS_SCALE)
    give_all_tables_primary_btrees(database)
    return database, generate_queries(TPCDS_QUERIES)


def customer_factory(name: str) -> Tuple[Database, List[str]]:
    """Fresh customer-analog database + its query list."""
    if name not in CUSTOMER_SPECS:
        raise KeyError(f"unknown customer workload {name!r}")
    database = Database(name)
    workload = generate_customer(database, name)
    give_all_tables_primary_btrees(database)
    return database, workload.queries


def all_read_only_factories():
    """(name, factory) pairs for Figure 9's six read-only workloads."""
    factories = [("TPC-DS", tpcds_factory)]
    for name in sorted(CUSTOMER_SPECS):
        factories.append(
            (name, lambda n=name: customer_factory(n)))
    return factories
