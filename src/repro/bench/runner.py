"""Experiment runner: measure statements, build concurrency profiles,
and orchestrate design comparisons.

Glue between the engine and the per-figure benchmark scripts: every bench
uses :func:`measure` for solo executions and :func:`profile_statement` to
turn solo measurements into :class:`StatementProfile` inputs for the
discrete-event concurrency simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.concurrency import StatementProfile
from repro.engine.executor import Executor, QueryResult
from repro.engine.locks import range_bucket
from repro.engine.metrics import QueryMetrics
from repro.storage.database import Database


@dataclass
class Measurement:
    """Averaged metrics over repeated solo executions of one statement."""

    sql: str
    elapsed_ms: float
    cpu_ms: float
    data_read_mb: float
    memory_peak_bytes: int
    dop: int
    rows: int
    runs: int
    leaf_accesses: Dict[str, int] = field(default_factory=dict)
    segments_read: int = 0
    segments_skipped: int = 0


def measure(
    executor: Executor,
    sql: str,
    repeats: int = 3,
    cold: bool = False,
    memory_grant_bytes: Optional[int] = None,
) -> Measurement:
    """Execute ``sql`` ``repeats`` times and average the metrics.

    The paper runs each experiment at least 5 times and reports averages;
    our simulated timings are deterministic, so 3 repeats only guard
    against accidental state dependence (warming the delta store etc.).
    """
    totals = QueryMetrics()
    rows = 0
    for _ in range(repeats):
        result = executor.execute(
            sql, cold=cold, memory_grant_bytes=memory_grant_bytes)
        totals.merge(result.metrics)
        rows = len(result.rows)
    return Measurement(
        sql=sql,
        elapsed_ms=totals.elapsed_ms / repeats,
        cpu_ms=totals.cpu_ms / repeats,
        data_read_mb=totals.data_read_mb / repeats,
        memory_peak_bytes=totals.memory_peak_bytes,
        dop=totals.dop,
        rows=rows,
        runs=repeats,
        leaf_accesses=dict(totals.leaf_accesses),
        segments_read=totals.segments_read,
        segments_skipped=totals.segments_skipped,
    )


def profile_statement(
    executor: Executor,
    sql: str,
    tag: str,
    is_write: bool = False,
    read_resources: Tuple = (),
    write_resources: Tuple = (),
    pool: str = "default",
    cold: bool = False,
) -> StatementProfile:
    """Measure a statement solo and wrap it as a simulator profile.

    CPU and I/O components are separated so the simulator can model CPU
    contention (shared cores) independently of I/O waits.
    """
    result = executor.execute(sql, cold=cold)
    metrics = result.metrics
    io_ms = max(0.0, metrics.elapsed_ms - metrics.cpu_ms)
    return StatementProfile(
        tag=tag,
        cpu_ms=max(1e-6, metrics.cpu_ms),
        io_ms=io_ms,
        dop=max(1, metrics.dop),
        is_write=is_write,
        read_resources=tuple(read_resources),
        write_resources=tuple(write_resources),
        pool=pool,
    )


@dataclass
class DesignComparison:
    """Per-query costs under several physical designs (Figure 9 input)."""

    design_names: List[str]
    #: query -> design -> cpu_ms
    costs: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def record(self, query: str, design: str, cpu_ms: float) -> None:
        """Record one execution of ``sql``."""
        self.costs.setdefault(query, {})[design] = cpu_ms

    def speedups(self, over: str, base: str) -> List[float]:
        """Speedup of design ``over`` relative to ``base`` per query
        (base_cost / over_cost, >1 means ``over`` is faster)."""
        out = []
        for per_design in self.costs.values():
            if over in per_design and base in per_design:
                if per_design[over] > 0:
                    out.append(per_design[base] / per_design[over])
        return out


def run_design_comparison(
    database_factory: Callable[[], Tuple[Database, Sequence[str]]],
    designs: Dict[str, Callable[[Database, Sequence[str]], None]],
    repeats: int = 1,
) -> DesignComparison:
    """Measure every query under every design.

    ``database_factory`` builds a fresh database + query list;
    each design callable mutates the database's physical design before
    measurement. A fresh database per design avoids cross-design
    contamination (leftover delta stores, stats).
    """
    comparison = DesignComparison(design_names=list(designs))
    for design_name, apply_design in designs.items():
        database, queries = database_factory()
        apply_design(database, queries)
        executor = Executor(database)
        for i, sql in enumerate(queries):
            measurement = measure(executor, sql, repeats=repeats)
            comparison.record(f"q{i}", design_name, measurement.cpu_ms)
    return comparison


def update_lock_footprint(table: str, key_column: str, key_value: object,
                          bucket_width: int = 1) -> Tuple:
    """Lock resource for an update hitting one key bucket."""
    return ("range", table, key_column, range_bucket(key_value, bucket_width))


def scan_lock_footprint(table: str, n_rowgroups: int) -> Tuple[Tuple, ...]:
    """Row-group-granularity read footprint of a columnstore scan."""
    return tuple(("rowgroup", table, g) for g in range(n_rowgroups))
