"""Benchmark harness utilities."""
