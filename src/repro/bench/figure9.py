"""End-to-end design comparison machinery for Figures 9 and 10.

For each read-only workload, the paper compares three physical designs
(Section 5.1):

(a) **B+ tree-only** — DTA restricted to B+ tree indexes;
(b) **columnstore-only** — a secondary columnstore on every table;
(c) **hybrid** — the extended DTA choosing freely.

This module builds each design on a fresh copy of the workload database,
executes every query, and collects per-query CPU time (the paper's
Figure 9 metric) plus plan-composition statistics (Figure 10: percentage
of plan leaves reading columnstore vs B+ tree, and the number of plans
using both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.advisor.advisor import (
    MODE_BTREE_ONLY,
    MODE_CSI_ONLY,
    MODE_HYBRID,
    TuningAdvisor,
)
from repro.advisor.workload import Workload
from repro.bench.reporting import speedup_histogram
from repro.engine.executor import Executor
from repro.storage.database import Database

DESIGNS = (MODE_HYBRID, MODE_CSI_ONLY, MODE_BTREE_ONLY)

#: A factory returns a fresh (database, query list) pair; designs mutate
#: the database, so each design evaluation gets its own copy.
WorkloadFactory = Callable[[], Tuple[Database, List[str]]]


@dataclass
class DesignEvaluation:
    """Results of evaluating one workload under the three designs."""

    workload_name: str
    #: design -> per-query CPU ms, aligned with the query list.
    cpu_ms: Dict[str, List[float]] = field(default_factory=dict)
    #: hybrid-design plan stats for Figure 10.
    csi_leaf_pct: float = 0.0
    btree_leaf_pct: float = 0.0
    hybrid_plan_count: int = 0
    recommendation_summaries: Dict[str, str] = field(default_factory=dict)

    def speedups(self, base_design: str) -> List[float]:
        """Per-query speedup of hybrid over ``base_design``."""
        hybrid = self.cpu_ms[MODE_HYBRID]
        base = self.cpu_ms[base_design]
        return [b / h if h > 0 else float("inf")
                for h, b in zip(hybrid, base)]

    def histogram(self, base_design: str) -> List[int]:
        """Figure 9-style bucket counts of hybrid speedups."""
        return speedup_histogram(self.speedups(base_design))


def apply_design(database: Database, workload: Workload, design: str,
                 advisor: TuningAdvisor) -> str:
    """Tune and materialize one design; returns a summary string."""
    if design == MODE_CSI_ONLY:
        # The paper's columnstore-only baseline is not advisor-driven: it
        # simply builds a secondary (nonclustered) CSI on every table.
        for table_name in workload.referenced_tables():
            table = database.table(table_name)
            if not table.schema.columnstore_columns():
                continue
            table.drop_all_secondary_indexes()
            table.create_secondary_columnstore(f"csi_{table_name}")
        advisor.catalog.invalidate()
        return "secondary columnstore on every referenced table"
    recommendation = advisor.tune(workload, mode=design)
    advisor.apply(recommendation)
    return recommendation.summary()


def evaluate_workload(name: str, factory: WorkloadFactory,
                      designs: Sequence[str] = DESIGNS) -> DesignEvaluation:
    """Run the full three-design comparison for one workload."""
    evaluation = DesignEvaluation(workload_name=name)
    for design in designs:
        database, queries = factory()
        workload = Workload.from_sql(queries, database)
        advisor = TuningAdvisor(database)
        summary = apply_design(database, workload, design, advisor)
        evaluation.recommendation_summaries[design] = summary
        executor = Executor(database, catalog=advisor.catalog)
        executor.refresh()
        cpu = []
        csi_leaves = 0
        btree_leaves = 0
        hybrid_plans = 0
        for sql in queries:
            result = executor.execute(sql)
            cpu.append(result.metrics.cpu_ms)
            if design == MODE_HYBRID and result.plan is not None:
                kinds = result.plan.index_kinds_at_leaves()
                csi_leaves += sum(1 for k in kinds if k == "csi")
                btree_leaves += sum(1 for k in kinds if k != "csi")
                if result.plan.is_hybrid():
                    hybrid_plans += 1
        evaluation.cpu_ms[design] = cpu
        if design == MODE_HYBRID:
            total = max(1, csi_leaves + btree_leaves)
            evaluation.csi_leaf_pct = 100.0 * csi_leaves / total
            evaluation.btree_leaf_pct = 100.0 * btree_leaves / total
            evaluation.hybrid_plan_count = hybrid_plans
    return evaluation


def give_all_tables_primary_btrees(database: Database) -> None:
    """Baseline physical design: every table clustered on its first
    column (its key in all generated workloads)."""
    for table in database.tables():
        table.set_primary_btree([table.schema.columns[0].name])
