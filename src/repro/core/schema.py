"""Table schema objects shared by the storage engine, optimizer and advisor.

A :class:`TableSchema` is an ordered list of :class:`Column` definitions.
Rows are plain Python tuples in schema column order; the schema provides the
name→position mapping and per-row validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import SchemaError
from repro.core.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A column definition: name, type, and nullability."""

    name: str
    col_type: ColumnType
    nullable: bool = True

    def __str__(self) -> str:
        null = "" if self.nullable else " not null"
        return f"{self.name} {self.col_type}{null}"


class TableSchema:
    """An ordered collection of columns for one table.

    The schema is immutable after construction. Column lookup by name is
    O(1); the advisor and optimizer use :meth:`ordinal` heavily when
    translating column references into tuple positions.
    """

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._ordinals: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._ordinals

    def __iter__(self):
        return iter(self.columns)

    def ordinal(self, column_name: str) -> int:
        """Position of ``column_name`` in the row tuple."""
        try:
            return self._ordinals[column_name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column_name!r}"
            ) from None

    def column(self, column_name: str) -> Column:
        """Values of one result/batch/stats column by name."""
        return self.columns[self.ordinal(column_name)]

    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def ordinals(self, column_names: Iterable[str]) -> List[int]:
        """Tuple positions of the named columns."""
        return [self.ordinal(n) for n in column_names]

    @property
    def row_byte_width(self) -> int:
        """Uncompressed row width in bytes (sum of column widths plus a
        small per-row header, matching row-store storage formats)."""
        return sum(c.col_type.byte_width for c in self.columns) + 9

    def validate_row(self, row: Sequence[object]) -> Tuple[object, ...]:
        """Validate and normalise one row against the schema."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{len(self.columns)} columns"
            )
        out = []
        for col, value in zip(self.columns, row):
            normalised = col.col_type.validate(value)
            if normalised is None and not col.nullable:
                raise SchemaError(f"column {col.name!r} is not nullable")
            out.append(normalised)
        return tuple(out)

    def columnstore_columns(self) -> List[str]:
        """Names of columns whose types a columnstore index supports."""
        return [c.name for c in self.columns if c.col_type.columnstore_supported]

    def has_unsupported_columns(self) -> bool:
        """True when at least one column cannot live in a columnstore —
        in that case a *primary* columnstore index cannot be built on the
        table (Section 4.3 of the paper)."""
        return any(not c.col_type.columnstore_supported for c in self.columns)

    def __repr__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"


@dataclass
class SchemaBuilder:
    """Fluent helper for building schemas in workload generators.

    Example::

        schema = (SchemaBuilder("lineitem")
                  .add("l_orderkey", BIGINT, nullable=False)
                  .add("l_quantity", decimal(2))
                  .build())
    """

    name: str
    _columns: List[Column] = field(default_factory=list)

    def add(self, name: str, col_type: ColumnType, nullable: bool = True) -> "SchemaBuilder":
        """Append a column definition; returns self for chaining."""
        self._columns.append(Column(name, col_type, nullable))
        return self

    def build(self) -> TableSchema:
        """Construct and populate the demo database."""
        return TableSchema(self.name, self._columns)


def key_tuple(row: Sequence[object], ordinals: Sequence[int]) -> Tuple[object, ...]:
    """Project ``row`` onto ``ordinals`` — the common key-extraction helper
    used by indexes and operators."""
    return tuple(row[i] for i in ordinals)
