"""Column type system for the repro engine.

The engine supports a deliberately small set of SQL types — the ones needed
by the TPC-H / TPC-DS / TPC-C schemas and the paper's micro-benchmarks:

* ``INT`` / ``BIGINT`` — 32/64-bit integers,
* ``DECIMAL`` — fixed-point numerics stored as scaled integers,
* ``VARCHAR`` — bounded strings,
* ``DATE`` — days since 1970-01-01, stored as an integer,
* ``XML`` — an intentionally *columnstore-incompatible* type used to
  exercise the advisor's handling of tables where a primary columnstore
  index cannot be built (Section 4.3 of the paper).

Each type knows its on-disk width (used by the storage simulator for page
and segment size accounting) and whether SQL Server-style columnstore
indexes support it.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass

from repro.core.errors import SchemaError

_EPOCH = _dt.date(1970, 1, 1)


class TypeKind(enum.Enum):
    """Enumeration of supported column type families."""

    INT = "int"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    DATE = "date"
    XML = "xml"


@dataclass(frozen=True)
class ColumnType:
    """A concrete column type: a :class:`TypeKind` plus type parameters.

    ``length`` applies to VARCHAR (maximum characters); ``scale`` applies to
    DECIMAL (digits after the point). Instances are immutable and hashable
    so they can be used as dictionary keys in the catalog.
    """

    kind: TypeKind
    length: int = 0
    scale: int = 0

    @property
    def byte_width(self) -> int:
        """Uncompressed row-store width in bytes, used for size accounting."""
        if self.kind is TypeKind.INT:
            return 4
        if self.kind is TypeKind.BIGINT:
            return 8
        if self.kind is TypeKind.DECIMAL:
            return 8
        if self.kind is TypeKind.DATE:
            return 4
        if self.kind is TypeKind.VARCHAR:
            # Average-case assumption: half the declared length plus a
            # 2-byte length prefix, matching variable-length row formats.
            return max(2, self.length // 2 + 2)
        if self.kind is TypeKind.XML:
            return 256
        raise SchemaError(f"unknown type kind: {self.kind!r}")

    @property
    def columnstore_supported(self) -> bool:
        """Whether this type can participate in a columnstore index."""
        return self.kind is not TypeKind.XML

    @property
    def is_numeric(self) -> bool:
        """Whether the type is INT/BIGINT/DECIMAL."""
        return self.kind in (TypeKind.INT, TypeKind.BIGINT, TypeKind.DECIMAL)

    def validate(self, value: object) -> object:
        """Check ``value`` against this type and normalise it.

        Returns the normalised value (e.g. a ``datetime.date`` becomes an
        int day number). Raises :class:`SchemaError` on mismatch. ``None``
        is allowed for every type (NULL).
        """
        if value is None:
            return None
        if self.kind in (TypeKind.INT, TypeKind.BIGINT):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected int, got {value!r}")
            return value
        if self.kind is TypeKind.DECIMAL:
            if isinstance(value, bool):
                raise SchemaError(f"expected numeric, got {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            raise SchemaError(f"expected numeric, got {value!r}")
        if self.kind is TypeKind.VARCHAR:
            if not isinstance(value, str):
                raise SchemaError(f"expected str, got {value!r}")
            if self.length and len(value) > self.length:
                raise SchemaError(
                    f"string of length {len(value)} exceeds VARCHAR({self.length})"
                )
            return value
        if self.kind is TypeKind.DATE:
            if isinstance(value, _dt.date):
                return (value - _EPOCH).days
            if isinstance(value, int):
                return value
            raise SchemaError(f"expected date, got {value!r}")
        if self.kind is TypeKind.XML:
            if not isinstance(value, str):
                raise SchemaError(f"expected XML string, got {value!r}")
            return value
        raise SchemaError(f"unknown type kind: {self.kind!r}")

    def __str__(self) -> str:
        if self.kind is TypeKind.VARCHAR and self.length:
            return f"varchar({self.length})"
        if self.kind is TypeKind.DECIMAL and self.scale:
            return f"decimal(18,{self.scale})"
        return self.kind.value


# Convenience constructors, mirroring common DDL spellings.
INT = ColumnType(TypeKind.INT)
BIGINT = ColumnType(TypeKind.BIGINT)
DATE = ColumnType(TypeKind.DATE)
XML = ColumnType(TypeKind.XML)


def decimal(scale: int = 2) -> ColumnType:
    """DECIMAL with the given scale (digits after the decimal point)."""
    return ColumnType(TypeKind.DECIMAL, scale=scale)


def varchar(length: int) -> ColumnType:
    """VARCHAR with the given maximum length."""
    if length <= 0:
        raise SchemaError("varchar length must be positive")
    return ColumnType(TypeKind.VARCHAR, length=length)


def date_to_int(value: _dt.date) -> int:
    """Convert a ``datetime.date`` to the engine's internal day number."""
    return (value - _EPOCH).days


def int_to_date(days: int) -> _dt.date:
    """Convert an internal day number back to a ``datetime.date``."""
    return _EPOCH + _dt.timedelta(days=days)
