"""Exception hierarchy for the repro engine.

All errors raised by the library derive from :class:`ReproError` so callers
can catch a single base class. Subclasses mirror the major subsystems:
schema/catalog problems, SQL parsing/binding problems, storage-level
violations, execution failures, and advisor misconfiguration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema definition or lookup is invalid (unknown table/column,
    duplicate names, type mismatches at DDL time)."""


class CatalogError(ReproError):
    """Catalog-level failure: unknown object, duplicate index name, or an
    attempt to create an unsupported index combination (e.g. two
    columnstore indexes on the same table)."""


class StorageError(ReproError):
    """Storage engine invariant violation (bad page id, row group overflow,
    duplicate key in a unique index, delete of a missing row)."""


class SqlError(ReproError):
    """SQL text could not be tokenized, parsed, or bound to the schema."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan (e.g. memory grant
    exceeded without a spillable operator, type error in an expression)."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for a bound statement."""


class AdvisorError(ReproError):
    """Advisor misuse: empty workload, nonsensical storage budget, or an
    unsupported tuning option combination."""


class TransactionError(ReproError):
    """Transaction-level failure in the concurrency simulator (deadlock
    victim, write-write conflict under snapshot isolation, etc.)."""


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent database (corrupt
    snapshot page, redo against a missing object, checker failure)."""


class ProcessAbort(BaseException):
    """Simulated hard process crash raised by crash-style fault points.

    Deliberately a :class:`BaseException` — not a :class:`ReproError` —
    so no ``except Exception`` recovery path in the engine can swallow
    it: it unwinds like a real ``kill -9`` would. In-process crash tests
    catch it explicitly, abandon the live objects, and reopen from disk;
    the subprocess harness converts it to ``os._exit``.
    """

    def __init__(self, point: str, hit_number: int):
        super().__init__(
            f"simulated process crash at {point!r} (hit {hit_number})")
        self.point = point
        self.hit_number = hit_number
